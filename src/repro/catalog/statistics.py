"""Optimizer statistics: table row counts, per-column NDV/min/max/null
counts, and equi-height histograms.

``collect_statistics`` plays the role of Oracle's ``ANALYZE`` / dynamic
sampling: it scans the stored rows and builds exact statistics.  The
cost-based transformation framework caches expensive statistic
computations across optimizer invocations (§3.4.4 of the paper); that
cache lives in :mod:`repro.cbqt.caching` and wraps the functions here.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

#: Number of buckets used for equi-height histograms.
DEFAULT_HISTOGRAM_BUCKETS = 32

#: Default selectivities used when no statistics are available, following
#: the classic System-R constants.
DEFAULT_EQ_SELECTIVITY = 0.01
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.05


class Histogram:
    """Equi-height histogram over the non-null values of one column.

    Stores ``boundaries[0..b]`` where each bucket ``i`` covers
    ``(boundaries[i], boundaries[i+1]]`` and holds ~1/b of the rows.  Also
    keeps the exact count of the most common values when the column is
    low-cardinality ("frequency histogram" mode, as Oracle does for NDV
    below the bucket count).
    """

    def __init__(self, values: Sequence[object], buckets: int = DEFAULT_HISTOGRAM_BUCKETS):
        sorted_values = sorted(values)
        self.total = len(sorted_values)
        self.frequency: Optional[dict[object, int]] = None
        self.boundaries: list[object] = []
        if self.total == 0:
            return
        distinct = sorted(set(sorted_values))
        if len(distinct) <= buckets:
            counts: dict[object, int] = {}
            for value in sorted_values:
                counts[value] = counts.get(value, 0) + 1
            self.frequency = counts
            self.boundaries = [distinct[0], distinct[-1]]
            return
        self.boundaries = [sorted_values[0]]
        for i in range(1, buckets + 1):
            idx = min(self.total - 1, (i * self.total) // buckets - 1)
            self.boundaries.append(sorted_values[idx])

    @property
    def is_frequency(self) -> bool:
        return self.frequency is not None

    def selectivity_eq(self, value: object, ndv: int) -> float:
        """Fraction of non-null rows equal to *value*."""
        if self.total == 0:
            return 0.0
        if self.frequency is not None:
            return self.frequency.get(value, 0) / self.total
        lo, hi = self.boundaries[0], self.boundaries[-1]
        try:
            out_of_range = value < lo or value > hi  # type: ignore[operator]
        except TypeError:
            return 1.0 / max(ndv, 1)
        if out_of_range:
            return 0.0
        return 1.0 / max(ndv, 1)

    def selectivity_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Fraction of non-null rows in the interval [low, high]."""
        if self.total == 0:
            return 0.0
        if self.frequency is not None:
            count = 0
            for value, n in self.frequency.items():
                if not _within(value, low, high, low_inclusive, high_inclusive):
                    continue
                count += n
            return count / self.total
        lo_frac = self._cumulative(low) if low is not None else 0.0
        hi_frac = self._cumulative(high) if high is not None else 1.0
        return max(0.0, min(1.0, hi_frac - lo_frac))

    def to_dict(self) -> dict:
        """JSON-able form.  Frequency counts are ``[value, count]`` pairs
        rather than an object — JSON object keys are always strings, and
        the histogram's keys are typed column values."""
        return {
            "total": self.total,
            "frequency": (
                None
                if self.frequency is None
                else [[value, count] for value, count in self.frequency.items()]
            ),
            "boundaries": list(self.boundaries),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild from :meth:`to_dict` output without re-deriving buckets
        — the serialized form *is* the histogram."""
        histogram = cls([])
        histogram.total = payload["total"]
        frequency = payload.get("frequency")
        histogram.frequency = (
            None
            if frequency is None
            else {value: count for value, count in frequency}
        )
        histogram.boundaries = list(payload.get("boundaries", []))
        return histogram

    def _cumulative(self, value: object) -> float:
        """Approximate fraction of rows with column value <= *value*.

        Duplicate boundary values (heavy skew: one value filling several
        buckets) are handled by locating the *last* boundary <= value, so
        the popular value's full bucket span counts."""
        bounds = self.boundaries
        if not bounds:
            return 0.0
        try:
            if value < bounds[0]:  # type: ignore[operator]
                return 0.0
            if value >= bounds[-1]:  # type: ignore[operator]
                return 1.0
        except TypeError:
            return 0.5
        idx = bisect.bisect_right(bounds, value) - 1
        idx = max(0, min(idx, len(bounds) - 2))
        lo, hi = bounds[idx], bounds[idx + 1]
        bucket_fraction = 1.0 / (len(bounds) - 1)
        base = idx * bucket_fraction
        if value == lo:
            within = 0.0
        elif isinstance(lo, (int, float)) and isinstance(hi, (int, float)) \
                and hi > lo:
            within = (float(value) - float(lo)) / (float(hi) - float(lo))
        else:
            within = 0.5
        return base + bucket_fraction * max(0.0, min(1.0, within))


def _within(value, low, high, low_inclusive, high_inclusive) -> bool:
    try:
        if low is not None:
            if low_inclusive and value < low:
                return False
            if not low_inclusive and value <= low:
                return False
        if high is not None:
            if high_inclusive and value > high:
                return False
            if not high_inclusive and value >= high:
                return False
    except TypeError:
        return False
    return True


@dataclass
class ColumnStats:
    """Statistics for one column."""

    num_distinct: int = 0
    num_nulls: int = 0
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    histogram: Optional[Histogram] = None

    def null_fraction(self, row_count: int) -> float:
        if row_count <= 0:
            return 0.0
        return self.num_nulls / row_count


@dataclass
class TableStats:
    """Statistics for one table."""

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: True when produced by dynamic sampling rather than ANALYZE; the
    #: CBQT caching layer keys on this (§3.4.4).
    sampled: bool = False

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())


class StatisticsRegistry:
    """Holds per-table statistics; the optimizer reads through this.

    Like the catalog, the registry keeps monotonic version counters
    (global and per table) bumped on every statistics change — including
    ``drop``, which ``Database.insert`` uses to mark stale statistics —
    so cached plans can detect staleness with an O(1) comparison."""

    def __init__(self) -> None:
        self._stats: dict[str, TableStats] = {}
        #: guards version bumps: ANALYZE and bulk-insert drops run on
        #: server worker threads concurrently, and `+= 1` on a shared
        #: counter is not atomic — a lost bump is a stale cached plan
        self._lock = threading.Lock()
        self._version = 0
        self._table_versions: dict[str, int] = {}

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every statistics change."""
        return self._version  # staticcheck: ignore[lock.discipline] GIL-atomic int/dict read; writers serialize under the lock

    def table_version(self, table: str) -> int:
        """Statistics version of one table (0 until first change)."""
        return self._table_versions.get(table.lower(), 0)  # staticcheck: ignore[lock.discipline] GIL-atomic int/dict read; writers serialize under the lock

    def _bump(self, table: str) -> None:
        with self._lock:
            self._version += 1
            key = table.lower()
            self._table_versions[key] = self._table_versions.get(key, 0) + 1

    def set(self, table: str, stats: TableStats) -> None:
        self._stats[table.lower()] = stats
        self._bump(table)

    def get(self, table: str) -> Optional[TableStats]:
        return self._stats.get(table.lower())

    def drop(self, table: str) -> None:
        # Bump even when no statistics were stored: a drop signals the
        # underlying data changed (bulk insert), which stales cached plans
        # whether or not statistics had been collected.
        self._stats.pop(table.lower(), None)
        self._bump(table)

    def clear(self) -> None:
        tables = list(self._stats)
        self._stats.clear()
        for table in tables:
            self._bump(table)

    def items(self) -> list[tuple[str, TableStats]]:
        """Snapshot of every table's statistics (checkpoint path)."""
        return sorted(self._stats.items())


def stats_to_dict(stats: TableStats) -> dict:
    """JSON-able form of one table's statistics (checkpoint payload)."""
    return {
        "row_count": stats.row_count,
        "sampled": stats.sampled,
        "columns": {
            name: {
                "num_distinct": col.num_distinct,
                "num_nulls": col.num_nulls,
                "min_value": col.min_value,
                "max_value": col.max_value,
                "histogram": (
                    col.histogram.to_dict() if col.histogram else None
                ),
            }
            for name, col in stats.columns.items()
        },
    }


def stats_from_dict(payload: dict) -> TableStats:
    """Rebuild :class:`TableStats` from :func:`stats_to_dict` output."""
    stats = TableStats(
        row_count=payload["row_count"],
        sampled=bool(payload.get("sampled", False)),
    )
    for name, col in payload.get("columns", {}).items():
        histogram = col.get("histogram")
        stats.columns[name] = ColumnStats(
            num_distinct=col["num_distinct"],
            num_nulls=col["num_nulls"],
            min_value=col["min_value"],
            max_value=col["max_value"],
            histogram=(
                Histogram.from_dict(histogram) if histogram else None
            ),
        )
    return stats


def collect_statistics(
    rows: Iterable[dict],
    column_names: Sequence[str],
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    with_histograms: bool = True,
) -> TableStats:
    """Compute exact statistics from stored rows (the ANALYZE path).

    *rows* is an iterable of column-name -> value dicts.
    """
    materialised = list(rows)
    stats = TableStats(row_count=len(materialised))
    for name in column_names:
        values = [row[name] for row in materialised]
        non_null = [v for v in values if v is not None]
        col = ColumnStats(
            num_distinct=len(set(non_null)),
            num_nulls=len(values) - len(non_null),
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
        )
        if with_histograms and non_null:
            col.histogram = Histogram(non_null, histogram_buckets)
        stats.columns[name] = col
    return stats


def sample_statistics(
    rows: Sequence[dict],
    column_names: Sequence[str],
    sample_fraction: float = 0.1,
    seed: int = 42,
) -> TableStats:
    """Dynamic sampling: statistics from a pseudo-random sample of rows.

    Used for tables with no collected statistics; this is the "expensive
    computation" the CBQT caching layer memoises (§3.4.4).  NDV is scaled
    up from the sample with a first-order estimator.
    """
    import random

    rng = random.Random(seed)
    n = len(rows)
    k = max(1, int(n * sample_fraction)) if n else 0
    sample = rng.sample(list(rows), k) if n else []
    stats = collect_statistics(sample, column_names, with_histograms=True)
    scale = (n / k) if k else 0.0
    stats.row_count = n
    stats.sampled = True
    for col in stats.columns.values():
        col.num_nulls = int(col.num_nulls * scale)
        if scale > 1.0 and col.num_distinct:
            # Scale NDV, capped by the table cardinality.
            col.num_distinct = min(n, int(col.num_distinct * (scale ** 0.5)))
    return stats
