"""Deterministic synthetic data generation primitives.

These generators are the building blocks the workload schemas use to
populate tables.  All of them take an explicit :class:`random.Random` so
that every experiment is reproducible from a seed.

Value distributions supported: uniform ints, zipf-skewed ints (for
duplicate-heavy join columns — the paper's semijoin caching depends on
duplicates), sequential keys, foreign-key sampling, dates, and categorical
strings.
"""

from __future__ import annotations

import random
import string
from typing import Callable, Optional, Sequence


def sequential_int(start: int = 1) -> Callable[[random.Random, int], int]:
    """Primary-key style generator: row i gets start + i."""

    def gen(_rng: random.Random, row_index: int) -> int:
        return start + row_index

    return gen


def uniform_int(low: int, high: int) -> Callable[[random.Random, int], int]:
    """Uniformly distributed integers in [low, high]."""

    def gen(rng: random.Random, _row_index: int) -> int:
        return rng.randint(low, high)

    return gen


def zipf_int(
    n_values: int, skew: float = 1.1, start: int = 1
) -> Callable[[random.Random, int], int]:
    """Zipf-skewed integers over *n_values* distinct values.

    Value ``start`` is the most frequent.  Uses an inverse-CDF table so
    generation is O(log n) per row.
    """
    weights = [1.0 / (i ** skew) for i in range(1, n_values + 1)]
    total = sum(weights)
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    import bisect

    def gen(rng: random.Random, _row_index: int) -> int:
        u = rng.random()
        return start + bisect.bisect_left(cumulative, u)

    return gen


def foreign_key(
    parent_keys: Sequence[int], skew: float = 0.0
) -> Callable[[random.Random, int], int]:
    """Sample a parent key, uniformly or with zipf skew over parents."""
    if not parent_keys:
        raise ValueError("foreign_key requires a non-empty parent key list")
    if skew <= 0.0:
        def gen(rng: random.Random, _row_index: int) -> int:
            return rng.choice(parent_keys)
        return gen
    zipf = zipf_int(len(parent_keys), skew, start=0)

    def skewed(rng: random.Random, row_index: int) -> int:
        return parent_keys[min(zipf(rng, row_index), len(parent_keys) - 1)]

    return skewed


def uniform_float(low: float, high: float) -> Callable[[random.Random, int], float]:
    def gen(rng: random.Random, _row_index: int) -> float:
        return round(rng.uniform(low, high), 2)

    return gen


def categorical(
    values: Sequence[object], weights: Optional[Sequence[float]] = None
) -> Callable[[random.Random, int], object]:
    """Pick from a fixed set of values with optional weights."""
    values = list(values)

    def gen(rng: random.Random, _row_index: int) -> object:
        if weights is None:
            return rng.choice(values)
        return rng.choices(values, weights=weights, k=1)[0]

    return gen


def iso_date(
    start_year: int = 1990, end_year: int = 2006
) -> Callable[[random.Random, int], str]:
    """ISO-format date strings (order correctly as strings)."""

    def gen(rng: random.Random, _row_index: int) -> str:
        year = rng.randint(start_year, end_year)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    return gen


def random_name(length: int = 8) -> Callable[[random.Random, int], str]:
    letters = string.ascii_lowercase

    def gen(rng: random.Random, _row_index: int) -> str:
        return "".join(rng.choice(letters) for _ in range(length))

    return gen


def nullable(
    inner: Callable[[random.Random, int], object], null_fraction: float
) -> Callable[[random.Random, int], object]:
    """Wrap a generator so a fraction of its outputs are NULL."""

    def gen(rng: random.Random, row_index: int) -> object:
        if rng.random() < null_fraction:
            return None
        return inner(rng, row_index)

    return gen


def generate_rows(
    column_generators: dict[str, Callable[[random.Random, int], object]],
    row_count: int,
    seed: int,
) -> list[dict]:
    """Generate *row_count* rows; column order follows the dict order."""
    rng = random.Random(seed)
    rows = []
    for i in range(row_count):
        rows.append({name: gen(rng, i) for name, gen in column_generators.items()})
    return rows
