"""Bind normalization and the adaptive-cursor-sharing bind profile.

``normalize_binds`` maps user-supplied bind values — a positional
sequence or a name -> value mapping — onto the canonical lowercase keys
:class:`~repro.sql.ast.BindParam` uses (positional ``?`` placeholders
are keyed ``"1"``, ``"2"``, ... left to right).

The *bind profile* of a cached plan records, per bind-sensitive
predicate, the selectivity the optimizer assumed from the peeked values.
When a later execution supplies different values, the profile re-derives
the selectivity those values would get; a large ratio between the two
means the cached plan was shaped for a very different data volume — the
signal Oracle's adaptive cursor sharing uses to spawn a new child
cursor, and that our service layer uses to re-optimize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..catalog.statistics import ColumnStats, StatisticsRegistry, TableStats
from ..errors import ExecutionError
from ..optimizer.selectivity import conjunct_selectivity
from ..qtree.blocks import QueryBlock, QueryNode
from ..sql import ast
from ..sql.render import render_expr


def normalize_binds(binds: object) -> dict:
    """Canonicalize *binds* to a ``key -> value`` dict.

    Accepts ``None``, a mapping (keys are lowercased; ``:name`` and
    1-based positional ``1`` both work), or a positional sequence
    (mapped to keys ``"1"``, ``"2"``, ...).
    """
    if binds is None:
        return {}
    if isinstance(binds, Mapping):
        return {str(key).lower(): value for key, value in binds.items()}
    if isinstance(binds, (list, tuple)):
        return {str(i + 1): value for i, value in enumerate(binds)}
    raise ExecutionError(
        f"bind values must be a mapping or sequence, not {type(binds).__name__}"
    )


class _AliasStats:
    """StatsContext over a fixed alias -> base-table mapping."""

    def __init__(self, alias_tables: Mapping[str, str],
                 statistics: StatisticsRegistry):
        self._alias_tables = alias_tables
        self._statistics = statistics

    def table_stats(self, alias: str) -> Optional[TableStats]:
        table = self._alias_tables.get(alias)
        return self._statistics.get(table) if table else None

    def column_stats(self, alias: str, column: str) -> Optional[ColumnStats]:
        stats = self.table_stats(alias)
        return stats.column(column) if stats else None


@dataclass
class BindPredicate:
    """One bind-sensitive conjunct of a cached plan."""

    #: rendered predicate text (with peeked values cleared), for display
    text: str
    #: pristine clone of the conjunct, peeks cleared
    conjunct: ast.Expr
    #: alias -> base-table map of the owning block
    alias_tables: dict
    #: selectivity estimated from the peeked bind values at optimize time
    peeked_selectivity: float

    def selectivity_for(self, binds: Mapping,
                        statistics: StatisticsRegistry) -> Optional[float]:
        """Selectivity this predicate would get with *binds* peeked, or
        None when a required bind value is missing."""
        probe = self.conjunct.clone()
        complete = True
        for node in probe.walk():
            if isinstance(node, ast.BindParam):
                if node.key in binds:
                    node.peeked = binds[node.key]
                else:
                    complete = False
        if not complete:
            return None
        return conjunct_selectivity(probe, _AliasStats(self.alias_tables,
                                                       statistics))


def extract_bind_profile(
    tree: QueryNode, statistics: StatisticsRegistry
) -> list[BindPredicate]:
    """Build the bind profile of *tree* (call after peeks are applied, so
    ``peeked_selectivity`` reflects the values the optimizer saw)."""
    profile: list[BindPredicate] = []
    for block in tree.iter_blocks():
        if not isinstance(block, QueryBlock):
            continue
        alias_tables = {
            item.alias: item.table_name.lower()
            for item in block.from_items
            if item.is_base_table
        }
        stats_ctx = _AliasStats(alias_tables, statistics)
        for conjunct in block.all_conjuncts():
            if not any(isinstance(n, ast.BindParam) for n in conjunct.walk()):
                continue
            peeked = conjunct_selectivity(conjunct, stats_ctx)
            pristine = conjunct.clone()
            for node in pristine.walk():
                if isinstance(node, ast.BindParam):
                    node.peeked = ast.NO_PEEK
            profile.append(
                BindPredicate(
                    text=render_expr(pristine),
                    conjunct=pristine,
                    alias_tables=dict(alias_tables),
                    peeked_selectivity=peeked,
                )
            )
    return profile


def max_drift(
    profile: Sequence[BindPredicate],
    binds: Mapping,
    statistics: StatisticsRegistry,
) -> float:
    """Largest selectivity ratio between the cached plan's peeked
    estimates and the estimates *binds* would get (1.0 = no drift)."""
    worst = 1.0
    for predicate in profile:
        fresh = predicate.selectivity_for(binds, statistics)
        if fresh is None:
            continue
        old = max(predicate.peeked_selectivity, 1e-6)
        new = max(fresh, 1e-6)
        worst = max(worst, old / new, new / old)
    return worst
