"""The query-serving layer: sessions, prepared statements, and the
shared plan cache.

This is a miniature of Oracle's server-side cursor machinery:

* ``QueryService`` owns the shared :class:`PlanCache` (library cache)
  over one :class:`~repro.database.Database`;
* ``Session.prepare()`` returns a :class:`PreparedStatement`; its
  ``execute(binds)`` peeks bind values on a hard parse, shares the
  cached plan on soft parses, and re-optimizes when a new bind value's
  estimated selectivity drifts far from the peeked plan's assumption
  (adaptive cursor sharing);
* DDL and ``analyze()`` invalidate exactly the dependent entries via the
  catalog/statistics version counters.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..database import Database, OptimizerConfig, QueryResult, ReadSnapshot
from ..errors import ReproError, StatementCancelled, StatementTimeout
from ..qtree.binds import apply_peeks, referenced_tables
from ..resilience import CancelToken, activate
from .binds import extract_bind_profile, max_drift, normalize_binds
from .metrics import CacheMetrics
from .plan_cache import CacheEntry, PlanCache, normalize_sql

#: re-optimize when the selectivity ratio between the peeked plan and the
#: current binds exceeds this factor
DEFAULT_REOPTIMIZE_THRESHOLD = 8.0


class PreparedStatement:
    """A parsed-once, execute-many handle onto one SQL text.

    The statement itself is light: the shareable state (plan, bind
    profile, dependency versions) lives in the service's plan cache, so
    two sessions preparing the same text share one cursor."""

    def __init__(self, service: "QueryService", sql: str,
                 config: Optional[OptimizerConfig] = None):
        self._service = service
        self.sql = sql
        self.config = config

    def execute(self, binds: object = None,
                timeout: Optional[float] = None) -> QueryResult:
        """Run with *binds* (mapping or positional sequence)."""
        return self._service.execute(self.sql, binds, self.config,
                                     timeout=timeout)

    def explain(self, binds: object = None) -> str:
        return self._service.explain(self.sql, binds, self.config)

    def cursor(self) -> "Cursor":
        """A cancellable execution handle for this statement."""
        return Cursor(self._service, self.sql, self.config)

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql!r})"


class Cursor:
    """A cancellable handle on one statement.

    ``execute()`` runs synchronously on the calling thread;
    ``cancel()`` may be called from any other thread and aborts the
    in-flight execution at its next cooperative check point with
    :class:`~repro.errors.StatementCancelled`.  A cancelled execution
    never poisons the shared plan cache: a plan cached before the
    cancellation stays valid and keeps serving other sessions.
    """

    def __init__(self, service: "QueryService", sql: str,
                 config: Optional[OptimizerConfig] = None):
        self._service = service
        self.sql = sql
        self.config = config
        self._token = CancelToken()

    def execute(self, binds: object = None,
                timeout: Optional[float] = None) -> QueryResult:
        if timeout is not None:
            self._token.set_deadline(timeout)
        return self._service.execute(
            self.sql, binds, self.config, token=self._token
        )

    def cancel(self) -> None:
        """Request cancellation (thread-safe, cooperative)."""
        self._token.cancel()

    @property
    def cancelled(self) -> bool:
        return self._token.cancelled


class Session:
    """One client's view of the service.  Sessions are cheap; plans are
    shared across all sessions of the owning service."""

    def __init__(self, service: "QueryService",
                 config: Optional[OptimizerConfig] = None):
        self._service = service
        self.config = config

    def prepare(self, sql: str,
                config: Optional[OptimizerConfig] = None) -> PreparedStatement:
        return PreparedStatement(self._service, sql, config or self.config)

    def cursor(self, sql: str,
               config: Optional[OptimizerConfig] = None) -> Cursor:
        """A cancellable execution handle (``Cursor.cancel()``)."""
        return Cursor(self._service, sql, config or self.config)

    def execute(self, sql: str, binds: object = None,
                timeout: Optional[float] = None) -> QueryResult:
        """Run *sql*; *timeout* bounds the whole statement in wall-clock
        seconds (StatementTimeout on expiry)."""
        return self._service.execute(sql, binds, self.config,
                                     timeout=timeout)

    def explain(self, sql: str, binds: object = None) -> str:
        return self._service.explain(sql, binds, self.config)


class QueryService:
    """Shared query-serving layer over one database."""

    def __init__(
        self,
        database: Database,
        capacity: int = 128,
        reoptimize_threshold: float = DEFAULT_REOPTIMIZE_THRESHOLD,
        caching: bool = True,
    ):
        self.database = database
        self.metrics = CacheMetrics()
        self.cache = PlanCache(capacity, self.metrics)
        self.reoptimize_threshold = reoptimize_threshold
        self.caching = caching
        # single-flight hard parsing: concurrent misses on one cache key
        # elect a leader that optimizes once; the rest wait and share the
        # stored entry instead of thundering-herd re-optimizing
        self._gate_lock = threading.Lock()
        self._gates: dict[tuple, threading.Lock] = {}
        # surface the plan-cache accounting in Database.snapshot();
        # collectors run at snapshot time only, so this costs nothing
        # on the serving path
        if database.metrics is not None:
            database.metrics.register_collector(
                "plan_cache", self.cache_stats
            )

    # -- session / statement construction ----------------------------------

    def session(self, config: Optional[OptimizerConfig] = None) -> Session:
        return Session(self, config)

    def prepare(self, sql: str,
                config: Optional[OptimizerConfig] = None) -> PreparedStatement:
        return PreparedStatement(self, sql, config)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        sql: str,
        binds: object = None,
        config: Optional[OptimizerConfig] = None,
        timeout: Optional[float] = None,
        token: Optional[CancelToken] = None,
        analyze: bool = False,
        snapshot: Optional[ReadSnapshot] = None,
    ) -> QueryResult:
        """Serve one execution: soft parse against the plan cache, hard
        parse (with bind peeking) on miss, adaptive re-optimization on
        selectivity drift.

        *timeout* bounds the whole statement (optimize + execute) in
        wall-clock seconds; *token* allows cross-thread cancellation.
        Both abort with a typed error and never poison the plan cache.
        *analyze* arms the per-operator execution profiler so the result
        supports full :meth:`~repro.database.QueryResult.explain_analyze`
        output (the plan itself is still cached and shared normally).
        *snapshot* pins the read to a point-in-time
        :class:`~repro.database.ReadSnapshot`: rows come from the pinned
        copy-on-write table versions, and plan-cache validation uses the
        versions recorded in the snapshot handle rather than the live
        counters (the server's snapshot-read isolation)."""
        if token is None and timeout is not None:
            token = CancelToken()
        if token is not None and timeout is not None:
            token.set_deadline(timeout)
        bind_map = normalize_binds(binds)
        try:
            with activate(token):
                entry, status, optimize_seconds = self._cursor_for(
                    sql, bind_map, config, token,
                    versions=snapshot.versions if snapshot else None,
                )
                result = self.database.execute_plan(
                    entry.optimized,
                    config,
                    bind_map,
                    optimize_seconds=optimize_seconds,
                    cache_status=status,
                    token=token,
                    analyze=analyze,
                    storage=snapshot.storage if snapshot else None,
                )
        except StatementTimeout:
            self.metrics.bump("timeouts")
            raise
        except StatementCancelled:
            self.metrics.bump("cancellations")
            raise
        self.metrics.bump("executions")
        if entry.degraded is not None:
            self.metrics.bump("degraded_executions")
        self.metrics.add_time("execute_seconds", result.execute_seconds)
        return result

    def explain(
        self,
        sql: str,
        binds: object = None,
        config: Optional[OptimizerConfig] = None,
    ) -> str:
        """EXPLAIN through the service: the (possibly cached) plan, its
        cache disposition, and the cache counters."""
        bind_map = normalize_binds(binds)
        entry, status, _seconds = self._cursor_for(sql, bind_map, config)
        return (
            f"-- cache: {status}\n"
            + entry.optimized.explain()
            + "\n"
            + self.metrics.format_table()
        )

    # -- cache management --------------------------------------------------

    def invalidate(self, table: Optional[str] = None) -> int:
        """Eagerly drop cached plans depending on *table* (all when None).
        Lazy validation makes this optional; it exists for explicit
        ``ALTER``-style maintenance."""
        return self.cache.invalidate(table)

    def cache_stats(self) -> dict:
        """Counters plus current occupancy."""
        stats = self.metrics.snapshot()
        stats["entries"] = len(self.cache)
        stats["capacity"] = self.cache.capacity
        return stats

    def format_cache_stats(self) -> str:
        stats = self.cache_stats()
        return (
            self.metrics.format_table()
            + f"\n  {'entries':<16} {stats['entries']}"
            + f"\n  {'capacity':<16} {stats['capacity']}"
        )

    # -- internals ---------------------------------------------------------

    def _versions(self, table: str) -> tuple:
        return (
            self.database.catalog.table_version(table),
            self.database.statistics.table_version(table),
        )

    def _key(self, sql: str, config: Optional[OptimizerConfig]) -> tuple:
        effective = config or self.database.config
        return (normalize_sql(sql), repr(effective))

    def _cursor_for(
        self,
        sql: str,
        bind_map: dict,
        config: Optional[OptimizerConfig],
        token: Optional[CancelToken] = None,
        versions: Optional[Callable[[str], tuple]] = None,
    ) -> tuple[CacheEntry, str, float]:
        """Find or build the cursor serving this call; returns the entry,
        its cache disposition, and the optimize time spent (0 on hit).

        *versions* overrides the dependency-version reader used for both
        cache validation and dependency recording; snapshot reads pass
        the versions pinned in their :class:`ReadSnapshot` so a cached
        plan is judged against the data the statement will actually see."""
        reader = versions or self._versions
        key = self._key(sql, config)
        if not self.caching:
            entry, seconds = self._hard_parse(
                key, sql, bind_map, config, token, reader
            )
            self.metrics.bump("misses")
            return entry, "uncached", seconds

        try:
            entry = self.cache.lookup(key, reader)
        except (StatementTimeout, StatementCancelled):
            raise
        except ReproError:
            # A broken cache must not take statements down with it:
            # degrade to an uncached hard parse for this call.
            self.metrics.bump("cache_errors")
            entry, seconds = self._hard_parse(
                key, sql, bind_map, config, token, reader
            )
            return entry, "uncached", seconds
        if entry is None:
            return self._build_gated(
                key, sql, bind_map, config, token, reader, "miss"
            )

        if (
            entry.degraded is not None
            and entry.quarantine_epoch != self.database.quarantine.epoch
        ):
            # The quarantine was reset since this fallback plan was built:
            # give the statement another shot at full CBQT.
            return self._build_gated(
                key, sql, bind_map, config, token, reader, "retry",
                counter="degraded_retries",
            )

        if entry.bind_profile and bind_map != entry.peeked_binds:
            drift = max_drift(
                entry.bind_profile, bind_map, self.database.statistics
            )
            if drift > self.reoptimize_threshold:
                return self._build_gated(
                    key, sql, bind_map, config, token, reader, "reoptimized",
                    counter="reoptimizations",
                )
        return entry, "hit", 0.0

    def _build_gated(
        self,
        key: tuple,
        sql: str,
        bind_map: dict,
        config: Optional[OptimizerConfig],
        token: Optional[CancelToken],
        reader: Callable[[str], tuple],
        status: str,
        counter: Optional[str] = None,
    ) -> tuple[CacheEntry, str, float]:
        """Hard parse behind a per-key gate (single flight).

        Concurrent callers needing the same cursor elect a leader: the
        first to claim the gate optimizes and stores; the rest block,
        then re-check the cache and share the leader's entry instead of
        redundantly re-optimizing (no thundering herd).  A follower whose
        re-check still comes up empty — the leader failed or was
        cancelled — builds its own entry; errors never wedge the gate."""
        with self._gate_lock:
            gate = self._gates.setdefault(key, threading.Lock())
        leader = gate.acquire(blocking=False)
        if not leader:
            gate.acquire()
        try:
            if not leader:
                self.metrics.bump("single_flight_waits")
                if token is not None:
                    token.check()
                try:
                    entry = self.cache.lookup(key, reader)
                except (StatementTimeout, StatementCancelled):
                    raise
                except ReproError:
                    entry = None
                if entry is not None and not (
                    entry.degraded is not None
                    and entry.quarantine_epoch != self.database.quarantine.epoch
                ):
                    # Share the leader's fresh cursor.  Bind drift is not
                    # re-checked here: the entry was peeked moments ago,
                    # and the next execution re-evaluates drift anyway.
                    return entry, "hit", 0.0
            entry, seconds = self._hard_parse(
                key, sql, bind_map, config, token, reader
            )
            self._store(entry)
            if counter is not None:
                self.metrics.bump(counter)
            return entry, status, seconds
        finally:
            gate.release()
            with self._gate_lock:
                self._gates.pop(key, None)

    def _store(self, entry: CacheEntry) -> None:
        """Store *entry*, tolerating cache faults (the plan still serves
        this call; it is simply not shared)."""
        try:
            self.cache.store(entry)
        except (StatementTimeout, StatementCancelled):
            raise
        except ReproError:
            self.metrics.bump("cache_errors")

    def _hard_parse(
        self,
        key: tuple,
        sql: str,
        bind_map: dict,
        config: Optional[OptimizerConfig],
        token: Optional[CancelToken] = None,
        versions: Optional[Callable[[str], tuple]] = None,
    ) -> tuple[CacheEntry, float]:
        """Parse, peek binds, optimize; build the cache entry recording
        the dependency versions read *before* optimization, so any
        concurrent catalog/statistics change invalidates the entry."""
        reader = versions or self._versions
        database = self.database
        started = time.perf_counter()
        tree = database.parse(sql)
        dependencies = {
            table: reader(table) for table in referenced_tables(tree)
        }
        apply_peeks(tree, bind_map)
        profile = extract_bind_profile(tree, database.statistics)

        def rebuild():
            fresh = database.parse(sql)
            apply_peeks(fresh, bind_map)
            return fresh

        epoch = database.quarantine.epoch
        optimized = database.optimize_tree(
            tree, sql, config, token=token, rebuild=rebuild
        )
        seconds = time.perf_counter() - started
        self.metrics.add_time("optimize_seconds", seconds)
        degradation = optimized.report.degradation
        entry = CacheEntry(
            key=key,
            sql=sql,
            optimized=optimized,
            dependencies=dependencies,
            bind_profile=profile,
            peeked_binds=dict(bind_map),
            degraded=degradation.level if degradation is not None else None,
            quarantine_epoch=epoch,
        )
        return entry, seconds
