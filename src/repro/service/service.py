"""The query-serving layer: sessions, prepared statements, and the
shared plan cache.

This is a miniature of Oracle's server-side cursor machinery:

* ``QueryService`` owns the shared :class:`PlanCache` (library cache)
  over one :class:`~repro.database.Database`;
* ``Session.prepare()`` returns a :class:`PreparedStatement`; its
  ``execute(binds)`` peeks bind values on a hard parse, shares the
  cached plan on soft parses, and re-optimizes when a new bind value's
  estimated selectivity drifts far from the peeked plan's assumption
  (adaptive cursor sharing);
* DDL and ``analyze()`` invalidate exactly the dependent entries via the
  catalog/statistics version counters.
"""

from __future__ import annotations

import time
from typing import Optional

from ..database import Database, OptimizerConfig, QueryResult
from .binds import extract_bind_profile, max_drift, normalize_binds
from .metrics import CacheMetrics
from .plan_cache import CacheEntry, PlanCache, normalize_sql
from ..qtree.binds import apply_peeks, referenced_tables

#: re-optimize when the selectivity ratio between the peeked plan and the
#: current binds exceeds this factor
DEFAULT_REOPTIMIZE_THRESHOLD = 8.0


class PreparedStatement:
    """A parsed-once, execute-many handle onto one SQL text.

    The statement itself is light: the shareable state (plan, bind
    profile, dependency versions) lives in the service's plan cache, so
    two sessions preparing the same text share one cursor."""

    def __init__(self, service: "QueryService", sql: str,
                 config: Optional[OptimizerConfig] = None):
        self._service = service
        self.sql = sql
        self.config = config

    def execute(self, binds: object = None) -> QueryResult:
        """Run with *binds* (mapping or positional sequence)."""
        return self._service.execute(self.sql, binds, self.config)

    def explain(self, binds: object = None) -> str:
        return self._service.explain(self.sql, binds, self.config)

    def __repr__(self) -> str:
        return f"PreparedStatement({self.sql!r})"


class Session:
    """One client's view of the service.  Sessions are cheap; plans are
    shared across all sessions of the owning service."""

    def __init__(self, service: "QueryService",
                 config: Optional[OptimizerConfig] = None):
        self._service = service
        self.config = config

    def prepare(self, sql: str,
                config: Optional[OptimizerConfig] = None) -> PreparedStatement:
        return PreparedStatement(self._service, sql, config or self.config)

    def execute(self, sql: str, binds: object = None) -> QueryResult:
        return self._service.execute(sql, binds, self.config)

    def explain(self, sql: str, binds: object = None) -> str:
        return self._service.explain(sql, binds, self.config)


class QueryService:
    """Shared query-serving layer over one database."""

    def __init__(
        self,
        database: Database,
        capacity: int = 128,
        reoptimize_threshold: float = DEFAULT_REOPTIMIZE_THRESHOLD,
        caching: bool = True,
    ):
        self.database = database
        self.metrics = CacheMetrics()
        self.cache = PlanCache(capacity, self.metrics)
        self.reoptimize_threshold = reoptimize_threshold
        self.caching = caching

    # -- session / statement construction ----------------------------------

    def session(self, config: Optional[OptimizerConfig] = None) -> Session:
        return Session(self, config)

    def prepare(self, sql: str,
                config: Optional[OptimizerConfig] = None) -> PreparedStatement:
        return PreparedStatement(self, sql, config)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        sql: str,
        binds: object = None,
        config: Optional[OptimizerConfig] = None,
    ) -> QueryResult:
        """Serve one execution: soft parse against the plan cache, hard
        parse (with bind peeking) on miss, adaptive re-optimization on
        selectivity drift."""
        bind_map = normalize_binds(binds)
        entry, status, optimize_seconds = self._cursor_for(sql, bind_map, config)
        result = self.database.execute_plan(
            entry.optimized,
            config,
            bind_map,
            optimize_seconds=optimize_seconds,
            cache_status=status,
        )
        self.metrics.bump("executions")
        self.metrics.add_time("execute_seconds", result.execute_seconds)
        return result

    def explain(
        self,
        sql: str,
        binds: object = None,
        config: Optional[OptimizerConfig] = None,
    ) -> str:
        """EXPLAIN through the service: the (possibly cached) plan, its
        cache disposition, and the cache counters."""
        bind_map = normalize_binds(binds)
        entry, status, _seconds = self._cursor_for(sql, bind_map, config)
        return (
            f"-- cache: {status}\n"
            + entry.optimized.explain()
            + "\n"
            + self.metrics.format_table()
        )

    # -- cache management --------------------------------------------------

    def invalidate(self, table: Optional[str] = None) -> int:
        """Eagerly drop cached plans depending on *table* (all when None).
        Lazy validation makes this optional; it exists for explicit
        ``ALTER``-style maintenance."""
        return self.cache.invalidate(table)

    def cache_stats(self) -> dict:
        """Counters plus current occupancy."""
        stats = self.metrics.snapshot()
        stats["entries"] = len(self.cache)
        stats["capacity"] = self.cache.capacity
        return stats

    def format_cache_stats(self) -> str:
        stats = self.cache_stats()
        return (
            self.metrics.format_table()
            + f"\n  {'entries':<16} {stats['entries']}"
            + f"\n  {'capacity':<16} {stats['capacity']}"
        )

    # -- internals ---------------------------------------------------------

    def _versions(self, table: str) -> tuple:
        return (
            self.database.catalog.table_version(table),
            self.database.statistics.table_version(table),
        )

    def _key(self, sql: str, config: Optional[OptimizerConfig]) -> tuple:
        effective = config or self.database.config
        return (normalize_sql(sql), repr(effective))

    def _cursor_for(
        self,
        sql: str,
        bind_map: dict,
        config: Optional[OptimizerConfig],
    ) -> tuple[CacheEntry, str, float]:
        """Find or build the cursor serving this call; returns the entry,
        its cache disposition, and the optimize time spent (0 on hit)."""
        key = self._key(sql, config)
        if not self.caching:
            entry, seconds = self._hard_parse(key, sql, bind_map, config)
            self.metrics.bump("misses")
            return entry, "uncached", seconds

        entry = self.cache.lookup(key, self._versions)
        if entry is None:
            entry, seconds = self._hard_parse(key, sql, bind_map, config)
            self.cache.store(entry)
            return entry, "miss", seconds

        if entry.bind_profile and bind_map != entry.peeked_binds:
            drift = max_drift(
                entry.bind_profile, bind_map, self.database.statistics
            )
            if drift > self.reoptimize_threshold:
                entry, seconds = self._hard_parse(key, sql, bind_map, config)
                self.cache.store(entry)
                self.metrics.bump("reoptimizations")
                return entry, "reoptimized", seconds
        return entry, "hit", 0.0

    def _hard_parse(
        self,
        key: tuple,
        sql: str,
        bind_map: dict,
        config: Optional[OptimizerConfig],
    ) -> tuple[CacheEntry, float]:
        """Parse, peek binds, optimize; build the cache entry recording
        the dependency versions read *before* optimization, so any
        concurrent catalog/statistics change invalidates the entry."""
        database = self.database
        started = time.perf_counter()
        tree = database.parse(sql)
        dependencies = {
            table: self._versions(table) for table in referenced_tables(tree)
        }
        apply_peeks(tree, bind_map)
        profile = extract_bind_profile(tree, database.statistics)
        optimized = database.optimize_tree(tree, sql, config)
        seconds = time.perf_counter() - started
        self.metrics.add_time("optimize_seconds", seconds)
        entry = CacheEntry(
            key=key,
            sql=sql,
            optimized=optimized,
            dependencies=dependencies,
            bind_profile=profile,
            peeked_binds=dict(bind_map),
        )
        return entry, seconds
