"""Thread-safe counters for the query-serving layer.

Mirrors the accounting Oracle exposes for the library cache
(V$LIBRARYCACHE / V$SQL): hits, misses, invalidations, evictions,
re-optimizations, plus latency accumulators split by phase.

These counters are also absorbed into the database-wide
:class:`~repro.obs.metrics.MetricsRegistry`:
:class:`~repro.service.QueryService` registers its ``cache_stats`` as a
``plan_cache`` collector, so ``Database.snapshot()`` includes this
accounting without adding any cost to the serving path.
"""

from __future__ import annotations

import threading


class CacheMetrics:
    """Counters for one plan cache.  Every update takes the lock, so
    concurrent sessions never lose increments."""

    _COUNTERS = (
        "hits",
        "misses",
        "invalidations",
        "evictions",
        "reoptimizations",
        "executions",
        # concurrent misses that waited on a single-flight leader instead
        # of redundantly hard parsing (thundering-herd avoidance)
        "single_flight_waits",
        # resilience layer (degradation ladder / quarantine / cancellation)
        "degraded_executions",
        "degraded_retries",
        "cache_errors",
        "timeouts",
        "cancellations",
    )
    _TIMERS = ("optimize_seconds", "execute_seconds")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)
        for name in self._TIMERS:
            setattr(self, name, 0.0)

    def bump(self, counter: str, n: int = 1) -> None:
        if counter not in self._COUNTERS:
            raise ValueError(f"unknown counter {counter!r}")
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def add_time(self, timer: str, seconds: float) -> None:
        if timer not in self._TIMERS:
            raise ValueError(f"unknown timer {timer!r}")
        with self._lock:
            setattr(self, timer, getattr(self, timer) + seconds)

    def snapshot(self) -> dict:
        """A consistent copy of every counter and timer."""
        with self._lock:
            out = {name: getattr(self, name) for name in self._COUNTERS}
            out.update({name: getattr(self, name) for name in self._TIMERS})
        out["hit_ratio"] = (
            out["hits"] / (out["hits"] + out["misses"])
            if (out["hits"] + out["misses"])
            else 0.0
        )
        return out

    def reset(self) -> None:
        with self._lock:
            for name in self._COUNTERS:
                setattr(self, name, 0)
            for name in self._TIMERS:
                setattr(self, name, 0.0)

    def format_table(self) -> str:
        """Human-readable rendering for EXPLAIN output and the CLI."""
        snap = self.snapshot()
        lines = ["plan cache statistics"]
        for name in self._COUNTERS:
            lines.append(f"  {name:<16} {snap[name]}")
        lines.append(f"  {'hit_ratio':<16} {snap['hit_ratio']:.3f}")
        for name in self._TIMERS:
            lines.append(f"  {name:<16} {snap[name]:.6f}")
        return "\n".join(lines)
