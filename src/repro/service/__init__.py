"""Query-serving layer: sessions, prepared statements, bind variables,
and a shared plan cache with adaptive cursor sharing.

See :mod:`repro.service.service` for the architecture overview.
"""

from .binds import BindPredicate, extract_bind_profile, max_drift, normalize_binds
from .metrics import CacheMetrics
from .plan_cache import CacheEntry, PlanCache, normalize_sql
from .service import (
    DEFAULT_REOPTIMIZE_THRESHOLD,
    Cursor,
    PreparedStatement,
    QueryService,
    Session,
)

__all__ = [
    "BindPredicate",
    "CacheEntry",
    "CacheMetrics",
    "Cursor",
    "DEFAULT_REOPTIMIZE_THRESHOLD",
    "PlanCache",
    "PreparedStatement",
    "QueryService",
    "Session",
    "extract_bind_profile",
    "max_drift",
    "normalize_binds",
    "normalize_sql",
]
