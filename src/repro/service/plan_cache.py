"""A concurrency-safe shared plan cache (the library cache).

Entries are keyed on normalized SQL text plus the optimizer-config
fingerprint, and record the catalog and statistics versions of every
base table the plan depends on.  Staleness is therefore an O(1) version
comparison performed lazily at lookup — DDL on table ``t`` or
``analyze('t')`` invalidates exactly the entries referencing ``t``, and
nothing else (fine-grained invalidation).

Capacity is bounded; the least recently used entry is evicted first,
as in Oracle's shared pool.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..database import OptimizedQuery
from ..resilience import faults
from .binds import BindPredicate
from .metrics import CacheMetrics

#: table -> (catalog_version, statistics_version) at optimize time
Dependencies = dict
#: table -> (catalog_version, statistics_version) now
VersionReader = Callable[[str], tuple]


@dataclass
class CacheEntry:
    """One cached cursor: the optimized plan plus everything needed to
    validate it and to detect bind-selectivity drift."""

    key: tuple
    sql: str
    optimized: OptimizedQuery
    dependencies: Dependencies
    bind_profile: list[BindPredicate] = field(default_factory=list)
    peeked_binds: dict = field(default_factory=dict)
    #: executions served by this entry (informational, guarded by cache lock)
    executions: int = 0
    #: degradation-ladder level this plan was produced at (None = full
    #: CBQT); a fallback plan is cached *as* a fallback plan, never
    #: silently promoted to first class
    degraded: Optional[str] = None
    #: quarantine epoch at optimize time; a quarantine reset bumps the
    #: epoch, making the service re-attempt degraded entries at full CBQT
    quarantine_epoch: int = 0


def normalize_sql(sql: str) -> str:
    """Whitespace-insensitive normalization of SQL text for cache keys."""
    return " ".join(sql.split())


class PlanCache:
    """LRU plan cache with version-based invalidation."""

    def __init__(self, capacity: int = 128,
                 metrics: Optional[CacheMetrics] = None):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics or CacheMetrics()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()

    # -- core operations ---------------------------------------------------

    def lookup(self, key: tuple, versions: VersionReader) -> Optional[CacheEntry]:
        """The entry under *key*, if present and still valid against the
        current catalog/statistics *versions*; stale entries are removed
        (counted as an invalidation and a miss)."""
        faults.check("plan_cache.lookup")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.metrics.bump("misses")
                return None
            for table, recorded in entry.dependencies.items():
                if versions(table) != recorded:
                    del self._entries[key]
                    self.metrics.bump("invalidations")
                    self.metrics.bump("misses")
                    return None
            self._entries.move_to_end(key)
            entry.executions += 1
            self.metrics.bump("hits")
            return entry

    def store(self, entry: CacheEntry) -> None:
        """Insert or replace *entry*, evicting LRU entries over capacity."""
        faults.check("plan_cache.store")
        with self._lock:
            self._entries[entry.key] = entry
            self._entries.move_to_end(entry.key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.metrics.bump("evictions")

    def invalidate(self, table: Optional[str] = None) -> int:
        """Eagerly drop entries depending on *table* (all entries when
        None); returns the number removed."""
        with self._lock:
            if table is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                name = table.lower()
                stale = [
                    key for key, entry in self._entries.items()
                    if name in entry.dependencies
                ]
                for key in stale:
                    del self._entries[key]
                removed = len(stale)
            self.metrics.bump("invalidations", removed)
            return removed

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[tuple]:
        """Cache keys in LRU -> MRU order."""
        with self._lock:
            return list(self._entries)

    def entries(self) -> list[CacheEntry]:
        """Entries in LRU -> MRU order (snapshot)."""
        with self._lock:
            return list(self._entries.values())
