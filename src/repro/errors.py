"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the facade boundary.  Subsystems raise the
most specific subclass that applies; messages carry enough context (token
position, block name, transformation name) to debug a failing query
without a stack trace.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for errors in the SQL front end (lexing and parsing)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class LexError(SqlError):
    """An input character sequence could not be tokenized."""


class ParseError(SqlError):
    """The token stream does not form a valid statement in our SQL subset."""


class CatalogError(ReproError):
    """A schema object is missing, duplicated, or inconsistently defined."""


class ResolutionError(ReproError):
    """A name in a query could not be resolved against the catalog."""


class TransformError(ReproError):
    """A transformation was applied where its preconditions do not hold."""


class OptimizerError(ReproError):
    """The physical optimizer could not produce a plan."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class VerificationError(ReproError):
    """The sanitizer found an invariant violation in a query tree or
    physical plan (paranoid mode only).

    Deliberately a direct :class:`ReproError` subclass: the CBQT search
    treats :class:`TransformError` / :class:`OptimizerError` as "state is
    infeasible, cost it at infinity" — a verification failure must escape
    that net and abort loudly instead of being silently costed away.
    """

    def __init__(self, message: str, diagnostics=None):
        super().__init__(message)
        #: the :class:`repro.analysis.Diagnostic` list that triggered this
        self.diagnostics = list(diagnostics or [])


class UnsupportedError(ReproError):
    """A SQL construct outside the implemented subset was encountered."""


class StatementTimeout(ReproError):
    """A statement exceeded its wall-clock timeout and was aborted.

    Deliberately *not* caught by the degradation ladder: a timed-out
    statement must fail fast, not burn more time retrying at lower
    optimization levels.
    """


class StatementCancelled(ReproError):
    """A statement was cancelled cooperatively (``Cursor.cancel()``).

    Like :class:`StatementTimeout`, escapes every fallback net.
    """


class AdmissionRejected(ReproError):
    """The server front end refused a statement at admission: too many
    in-flight statements or a full (global or per-session) queue.

    Maps to HTTP 429 — the client should back off and retry; nothing
    about the statement itself is wrong.
    """


class SessionNotFound(ReproError):
    """A server request referenced a session (or a cursor/statement
    handle within one) that does not exist — never created, explicitly
    disconnected, or reaped after idling past the server's idle timeout.

    Maps to HTTP 404.
    """


class DurabilityError(ReproError):
    """The durable-storage layer (:mod:`repro.durability`) failed: the
    write-ahead log could not be appended or repaired, a checkpoint
    could not be written, or an operation required a ``data_dir`` the
    database was opened without.

    Raised *before* the in-memory state is published, so a failed
    commit is invisible — the copy-on-write version swap only happens
    once its WAL record is safely on disk.
    """


class WalCorruption(DurabilityError):
    """The write-ahead log is damaged beyond the torn-tail contract:
    an invalid record was found *before* later valid records (a hole in
    the middle of the log), or the LSN sequence is broken.

    A torn **final** record — the expected signature of a crash during
    an append — is not corruption; recovery truncates it silently and
    reports the dropped bytes on the :class:`~repro.durability.RecoveryReport`.
    """


class RecoveryError(DurabilityError):
    """Recovery could not rebuild a consistent database from the data
    directory: unreadable checkpoint, replay failure, or a
    ``recover --verify`` differential mismatch."""


class ServerShuttingDown(ReproError):
    """The server front end refused a statement because it is draining
    for shutdown: in-flight statements finish (within the grace
    period), new work is refused.

    Maps to HTTP 503 — the client should reconnect elsewhere or retry
    after the restart; nothing about the statement itself is wrong.
    """


class FaultInjected(ReproError):
    """Raised by the fault-injection harness (:mod:`repro.resilience.faults`).

    A typed :class:`ReproError` so the chaos suite can assert the
    resilience contract: every injected fault yields either a correct
    result via fallback or a *typed* error — never a bare crash.
    """
