"""Transformation auditor — paranoid-mode harness for the optimizer.

When ``debug_checks`` is enabled in :class:`repro.cbqt.CbqtConfig`, the
heuristic pipeline and the CBQT search hand every intermediate artifact
to one :class:`TransformationAuditor`: the input tree, the tree after
each heuristic rewrite, every candidate state the search costs (with its
transformation name and state bitvector), and the final physical plan.

The auditor attributes each violation to the exact rewrite step that
produced it and either raises :class:`~repro.errors.VerificationError`
immediately (``raise_on_error=True``, the paranoid default — a corrupted
tree must not reach costing) or just accumulates the diagnostics for a
``check``-style report.

Call sites are guarded (``if auditor is not None: ...``), so disabling
``debug_checks`` costs literally nothing on the optimize path — the
zero-overhead contract ``benchmarks/bench_debug_checks.py`` enforces.
"""

from __future__ import annotations

from typing import Optional

from ..catalog.schema import Catalog
from ..errors import VerificationError
from ..optimizer.plans import Plan
from ..qtree.blocks import QueryNode
from .diagnostics import Diagnostic, DiagnosticReport, attributed
from .plan_verifier import PlanVerifier
from .qtree_verifier import QTreeVerifier


class TransformationAuditor:
    """Runs both verifiers around every transformation step."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        raise_on_error: bool = True,
        context: str = "transformation audit",
    ):
        self.report = DiagnosticReport(context=context)
        self.raise_on_error = raise_on_error
        self._qtree = QTreeVerifier(catalog)
        self._plans = PlanVerifier()

    # -- audit points -------------------------------------------------------

    def audit_tree(
        self,
        root: QueryNode,
        transformation: Optional[str] = None,
        state: Optional[tuple[int, ...]] = None,
    ) -> list[Diagnostic]:
        """Verify a query tree, attributing violations to the rewrite
        step (and CBQT state) that produced it."""
        return self._record(self._qtree.verify(root), transformation, state)

    def audit_plan(
        self,
        plan: Plan,
        transformation: Optional[str] = None,
        state: Optional[tuple[int, ...]] = None,
    ) -> list[Diagnostic]:
        """Verify a physical plan with the same attribution."""
        return self._record(self._plans.verify(plan), transformation, state)

    # -- internals ----------------------------------------------------------

    def _record(
        self,
        diagnostics: list[Diagnostic],
        transformation: Optional[str],
        state: Optional[tuple[int, ...]],
    ) -> list[Diagnostic]:
        diagnostics = attributed(diagnostics, transformation, state)
        self.report.extend(diagnostics)
        errors = [d for d in diagnostics if d.is_error]
        if errors and self.raise_on_error:
            raise VerificationError(
                "; ".join(d.format() for d in errors[:3])
                + (f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""),
                diagnostics=errors,
            )
        return diagnostics
