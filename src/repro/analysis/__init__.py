"""Static analysis over the query-tree IR and physical plans.

The optimizer sanitizer: :class:`QTreeVerifier` checks structural
invariants of query trees, :class:`PlanVerifier` checks physical-plan
contracts, and :class:`TransformationAuditor` wires both into every
transformation step when ``debug_checks`` is on (paranoid mode), blaming
each violation on the exact rewrite + CBQT state that introduced it.
"""

from .auditor import TransformationAuditor
from .diagnostics import Diagnostic, DiagnosticReport, attributed
from .plan_verifier import PlanVerifier
from .qtree_verifier import QTreeVerifier

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "PlanVerifier",
    "QTreeVerifier",
    "TransformationAuditor",
    "attributed",
]
