"""Structural invariant verifier for the query-tree IR.

The transformation framework rewrites a shared declarative IR dozens of
times per query; a single transformation bug (a dangling alias after a
view merge, a conjunct referencing a deleted block, a non-grouped column
surviving group-by placement) silently corrupts costing and results.
This verifier checks the invariants every :class:`QueryBlock` /
:class:`SetOpBlock` must satisfy at *every* point of the pipeline:

``qtree.column-resolution``
    every column reference resolves to a visible from-item (local alias,
    or an enclosing block's alias for correlated references) and to an
    existing output column of that from-item;
``qtree.from-item``
    from-item sources are well-formed (base tables carry a resolved
    TableDef, derived tables a built query node);
``qtree.alias-unique``
    from-item aliases are unique within a block;
``qtree.block-names``
    block / set-op names are unique across the whole tree (TargetRef
    paths address blocks by name);
``qtree.join-type`` / ``qtree.join-endpoints``
    join types are known and every alias a non-inner item's ON condition
    references exists in scope (the partial-order endpoints);
``qtree.join-connected``
    the join graph of a multi-item block is connected (warning only: a
    genuine cross join is legal SQL);
``qtree.group-consistency``
    in an aggregated block, select / having / order-by expressions are
    composed of group-by expressions, aggregates, correlated references
    and constants only;
``qtree.grouping-sets``
    grouping-set indices point into the group-by list and grouping
    expressions are plain columns (the engine's rollup contract);
``qtree.dangling-subquery``
    every subquery expression holds a *built* query node, not a leftover
    parser statement;
``qtree.setop-shape``
    set operations have a known operator, the documented arity (n-ary
    UNION ALL, binary otherwise) and branches agreeing on column count;
``qtree.select-shape``
    blocks have a non-empty select list and a sane rownum limit.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional

from ..catalog.schema import Catalog
from ..errors import ReproError
from ..qtree import exprutil
from ..qtree.blocks import JOIN_TYPES, FromItem, QueryBlock, QueryNode, SetOpBlock
from ..sql import ast
from ..sql.render import render_expr
from .diagnostics import Diagnostic

#: scope chain entry: alias -> visible output columns (None = unknown,
#: resolution succeeds for any column name)
_Env = dict[str, Optional[set[str]]]


class QTreeVerifier:
    """Checks structural invariants over a query tree."""

    #: total verify() invocations (read by the zero-overhead benchmark)
    calls = 0

    def __init__(self, catalog: Optional[Catalog] = None):
        self._catalog = catalog

    def verify(self, root: QueryNode) -> list[Diagnostic]:
        type(self).calls += 1
        diagnostics: list[Diagnostic] = []
        self._check_unique_names(root, diagnostics)
        self._verify_node(root, [], diagnostics)
        return diagnostics

    # -- tree-wide invariants ------------------------------------------------

    def _check_unique_names(
        self, root: QueryNode, diagnostics: list[Diagnostic]
    ) -> None:
        seen: dict[str, int] = {}
        for node in _iter_all_nodes(root):
            seen[node.name] = seen.get(node.name, 0) + 1
        for name, count in seen.items():
            if count > 1:
                diagnostics.append(Diagnostic(
                    "qtree.block-names", "error",
                    f"block name {name!r} appears {count} times in one tree "
                    "(TargetRef paths are ambiguous)",
                    node=name,
                ))

    # -- node dispatch -------------------------------------------------------

    def _verify_node(
        self, node: QueryNode, scopes: list[_Env], diagnostics: list[Diagnostic]
    ) -> None:
        if isinstance(node, SetOpBlock):
            self._verify_setop(node, scopes, diagnostics)
        elif isinstance(node, QueryBlock):
            self._verify_block(node, scopes, diagnostics)
        else:
            diagnostics.append(Diagnostic(
                "qtree.from-item", "error",
                f"unexpected node type {type(node).__name__} in query tree",
            ))

    def _verify_setop(
        self, node: SetOpBlock, scopes: list[_Env], diagnostics: list[Diagnostic]
    ) -> None:
        if node.op not in ("UNION", "UNION ALL", "INTERSECT", "MINUS"):
            diagnostics.append(Diagnostic(
                "qtree.setop-shape", "error",
                f"unknown set operator {node.op!r}", node=node.name,
            ))
        if node.op == "UNION ALL":
            if len(node.branches) < 2:
                diagnostics.append(Diagnostic(
                    "qtree.setop-shape", "error",
                    f"UNION ALL has {len(node.branches)} branch(es), needs >= 2",
                    node=node.name,
                ))
        elif len(node.branches) != 2:
            diagnostics.append(Diagnostic(
                "qtree.setop-shape", "error",
                f"{node.op} has {len(node.branches)} branches, must be binary",
                node=node.name,
            ))
        arities = []
        for branch in node.branches:
            arities.append(_output_columns_of(branch))
            self._verify_node(branch, scopes, diagnostics)
        known = [a for a in arities if a is not None]
        if known and any(len(a) != len(known[0]) for a in known):
            diagnostics.append(Diagnostic(
                "qtree.setop-shape", "error",
                "set operation branches disagree on column count: "
                + ", ".join(str(len(a)) for a in known),
                node=node.name,
            ))
        if node.order_by and known:
            visible = {c.lower() for c in known[0]}
            for item in node.order_by:
                for ref in ast.column_refs_in(item.expr):
                    if ref.qualifier is None and ref.name not in visible:
                        diagnostics.append(Diagnostic(
                            "qtree.column-resolution", "error",
                            f"set-op ORDER BY references {ref.name!r}, not an "
                            "output column",
                            node=node.name,
                        ))

    # -- block invariants ---------------------------------------------------

    def _verify_block(
        self, block: QueryBlock, scopes: list[_Env], diagnostics: list[Diagnostic]
    ) -> None:
        local = self._build_env(block, diagnostics)
        chain = scopes + [local]

        if not block.select_items:
            diagnostics.append(Diagnostic(
                "qtree.select-shape", "error",
                "block has an empty select list", node=block.name,
            ))
        if block.rownum_limit is not None and (
            not isinstance(block.rownum_limit, int) or block.rownum_limit < 0
        ):
            diagnostics.append(Diagnostic(
                "qtree.select-shape", "error",
                f"invalid rownum limit {block.rownum_limit!r}", node=block.name,
            ))

        self._check_from_items(block, chain, diagnostics)
        self._check_expressions(block, chain, diagnostics)
        if block.group_by or block.has_aggregates:
            self._check_group_consistency(block, diagnostics)
        self._check_grouping_sets(block, diagnostics)
        self._check_connectivity(block, diagnostics)

        # Recurse into derived tables: a (lateral) view may reference the
        # parent block's other aliases, so they stay in scope.
        for item in block.from_items:
            if item.is_derived and isinstance(item.subquery, QueryNode):
                sibling_env: _Env = {
                    alias: cols for alias, cols in local.items()
                    if alias != item.alias
                }
                self._verify_node(
                    item.subquery, scopes + [sibling_env], diagnostics
                )

    def _build_env(
        self, block: QueryBlock, diagnostics: list[Diagnostic]
    ) -> _Env:
        env: _Env = {}
        for item in block.from_items:
            if item.alias in env:
                diagnostics.append(Diagnostic(
                    "qtree.alias-unique", "error",
                    f"duplicate from-item alias {item.alias!r}",
                    node=block.name,
                ))
                continue
            env[item.alias] = self._columns_of(item, block, diagnostics)
        return env

    def _columns_of(
        self, item: FromItem, block: QueryBlock, diagnostics: list[Diagnostic]
    ) -> Optional[set[str]]:
        if item.is_base_table:
            table = item.table
            if table is None and self._catalog is not None:
                try:
                    table = self._catalog.table(item.table_name)
                except ReproError:
                    table = None
            if table is None:
                diagnostics.append(Diagnostic(
                    "qtree.from-item", "error",
                    f"base-table from-item {item.alias!r} "
                    f"({item.source!r}) has no resolved table definition",
                    node=block.name,
                ))
                return None
            return {c.lower() for c in table.column_names} | {"rowid"}
        if not isinstance(item.subquery, QueryNode):
            diagnostics.append(Diagnostic(
                "qtree.from-item", "error",
                f"derived from-item {item.alias!r} holds "
                f"{type(item.source).__name__}, not a built query node",
                node=block.name,
            ))
            return None
        columns = _output_columns_of(item.subquery)
        if columns is None:
            diagnostics.append(Diagnostic(
                "qtree.from-item", "error",
                f"cannot compute output columns of derived table "
                f"{item.alias!r}", node=block.name,
            ))
            return None
        return {c.lower() for c in columns}

    # -- from-item / join invariants ------------------------------------------

    def _check_from_items(
        self,
        block: QueryBlock,
        chain: list[_Env],
        diagnostics: list[Diagnostic],
    ) -> None:
        for item in block.from_items:
            if item.join_type not in JOIN_TYPES:
                diagnostics.append(Diagnostic(
                    "qtree.join-type", "error",
                    f"from-item {item.alias!r} has unknown join type "
                    f"{item.join_type!r}", node=block.name,
                ))
                continue
            if item.is_inner and item.join_conjuncts:
                diagnostics.append(Diagnostic(
                    "qtree.join-type", "error",
                    f"INNER from-item {item.alias!r} carries ON conjuncts "
                    "(inner-join predicates belong to WHERE)",
                    node=block.name,
                ))
            if not item.is_inner:
                for predecessor in sorted(item.required_predecessors()):
                    if not _alias_visible(predecessor, chain):
                        diagnostics.append(Diagnostic(
                            "qtree.join-endpoints", "error",
                            f"{item.join_type} join of {item.alias!r} "
                            f"references alias {predecessor!r} which is not "
                            "in scope", node=block.name,
                        ))

    def _check_connectivity(
        self, block: QueryBlock, diagnostics: list[Diagnostic]
    ) -> None:
        aliases = [item.alias for item in block.from_items]
        if len(aliases) < 2:
            return
        parent = {alias: alias for alias in aliases}

        def find(a: str) -> str:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        local = set(aliases)
        conjuncts = list(block.where_conjuncts)
        for item in block.from_items:
            conjuncts.extend(item.join_conjuncts)
        for conjunct in conjuncts:
            refs = sorted(exprutil.aliases_referenced(conjunct) & local)
            for other in refs[1:]:
                union(refs[0], other)
        for item in block.from_items:
            # lateral correlation is a join edge too
            if item.is_derived and isinstance(item.subquery, QueryNode):
                for ref in item.subquery.correlation_refs():
                    if ref.qualifier in local and ref.qualifier != item.alias:
                        union(item.alias, ref.qualifier)
        roots = {find(a) for a in aliases}
        if len(roots) > 1:
            diagnostics.append(Diagnostic(
                "qtree.join-connected", "warning",
                f"join graph has {len(roots)} disconnected components over "
                f"aliases {sorted(aliases)} (cross product)", node=block.name,
            ))

    # -- expression resolution ------------------------------------------------

    def _check_expressions(
        self,
        block: QueryBlock,
        chain: list[_Env],
        diagnostics: list[Diagnostic],
    ) -> None:
        output_columns = _output_columns_of(block) or []
        visible_outputs = {c.lower() for c in output_columns}
        sites: list[tuple[str, ast.Expr]] = []
        sites.extend(("select", item.expr) for item in block.select_items)
        sites.extend(("where", c) for c in block.where_conjuncts)
        sites.extend(("group by", g) for g in block.group_by)
        sites.extend(("having", c) for c in block.having_conjuncts)
        sites.extend(("order by", o.expr) for o in block.order_by)
        for item in block.from_items:
            sites.extend((f"join on {item.alias}", c)
                         for c in item.join_conjuncts)
        for site, expr in sites:
            self._check_expr(
                expr, site, block, chain, visible_outputs, diagnostics
            )

    def _check_expr(
        self,
        expr: ast.Expr,
        site: str,
        block: QueryBlock,
        chain: list[_Env],
        visible_outputs: set[str],
        diagnostics: list[Diagnostic],
    ) -> None:
        for node in expr.walk():
            if isinstance(node, ast.ColumnRef):
                self._check_column_ref(
                    node, site, block, chain, visible_outputs, diagnostics
                )
            elif isinstance(node, ast.Star):
                if node.qualifier is not None and not _alias_visible(
                    node.qualifier, chain
                ):
                    diagnostics.append(Diagnostic(
                        "qtree.column-resolution", "error",
                        f"{site}: star qualifier {node.qualifier!r} is not "
                        "in scope", node=block.name,
                    ))
            elif isinstance(node, ast.SubqueryExpr):
                if not isinstance(node.query, QueryNode):
                    diagnostics.append(Diagnostic(
                        "qtree.dangling-subquery", "error",
                        f"{site}: subquery expression holds "
                        f"{type(node.query).__name__}, not a built query "
                        "node", node=block.name,
                    ))
                else:
                    self._verify_node(node.query, chain, diagnostics)

    def _check_column_ref(
        self,
        ref: ast.ColumnRef,
        site: str,
        block: QueryBlock,
        chain: list[_Env],
        visible_outputs: set[str],
        diagnostics: list[Diagnostic],
    ) -> None:
        if ref.qualifier is None:
            if ref.name == "rownum" or ref.name in visible_outputs:
                return
            diagnostics.append(Diagnostic(
                "qtree.column-resolution", "error",
                f"{site}: unqualified reference {ref.name!r} matches no "
                "output column", node=block.name,
            ))
            return
        for env in reversed(chain):
            if ref.qualifier in env:
                columns = env[ref.qualifier]
                if columns is not None and ref.name not in columns:
                    diagnostics.append(Diagnostic(
                        "qtree.column-resolution", "error",
                        f"{site}: {ref.qualifier}.{ref.name} names no column "
                        f"of from-item {ref.qualifier!r}", node=block.name,
                    ))
                return
        diagnostics.append(Diagnostic(
            "qtree.column-resolution", "error",
            f"{site}: reference {ref.qualifier}.{ref.name} resolves to no "
            "visible from-item or correlation", node=block.name,
        ))

    # -- aggregation invariants ------------------------------------------------

    def _check_group_consistency(
        self, block: QueryBlock, diagnostics: list[Diagnostic]
    ) -> None:
        group_keys = {render_expr(g) for g in block.group_by}
        local = block.aliases()
        determined = self._determined_aliases(block)

        def consistent(expr: ast.Expr) -> bool:
            if isinstance(expr, (ast.Literal, ast.BindParam)):
                return True
            if render_expr(expr) in group_keys:
                return True
            if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
                return True
            if isinstance(expr, ast.SubqueryExpr):
                return expr.left is None or consistent(expr.left)
            if isinstance(expr, ast.ColumnRef):
                # correlated (outer) references act as per-invocation
                # constants; rownum is evaluated pre-grouping upstream;
                # grouping an alias's rowid / full primary key determines
                # every column of that alias (Oracle's rowid group-by
                # unnesting relies on exactly this)
                return (
                    expr.qualifier not in local
                    or expr.qualifier in determined
                )
            if isinstance(expr, ast.Star):
                return False
            children = list(expr.children())
            return bool(children) and all(consistent(c) for c in children)

        sites: list[tuple[str, ast.Expr]] = []
        sites.extend(("select", item.expr) for item in block.select_items)
        sites.extend(("having", c) for c in block.having_conjuncts)
        sites.extend(("order by", o.expr) for o in block.order_by)
        for site, expr in sites:
            if not consistent(expr):
                diagnostics.append(Diagnostic(
                    "qtree.group-consistency", "error",
                    f"{site} expression {render_expr(expr)!r} is neither "
                    "grouped, aggregated, correlated, nor constant",
                    node=block.name,
                ))

    def _determined_aliases(self, block: QueryBlock) -> set[str]:
        """Aliases whose every column is functionally determined by the
        group-by list: their rowid is grouped, or their base table's full
        primary key is grouped."""
        grouped: dict[str, set[str]] = {}
        for expr in block.group_by:
            if isinstance(expr, ast.ColumnRef) and expr.qualifier:
                grouped.setdefault(expr.qualifier, set()).add(expr.name)
        determined = {
            alias for alias, columns in grouped.items() if "rowid" in columns
        }
        for item in block.from_items:
            if item.alias in determined or item.alias not in grouped:
                continue
            if item.is_base_table and item.table is not None:
                key = [c.lower() for c in (item.table.primary_key or [])]
                if key and set(key) <= grouped[item.alias]:
                    determined.add(item.alias)
        return determined

    def _check_grouping_sets(
        self, block: QueryBlock, diagnostics: list[Diagnostic]
    ) -> None:
        if block.grouping_sets is None:
            return
        for grouping_set in block.grouping_sets:
            for index in grouping_set:
                if not 0 <= index < len(block.group_by):
                    diagnostics.append(Diagnostic(
                        "qtree.grouping-sets", "error",
                        f"grouping set index {index} outside the group-by "
                        f"list (len {len(block.group_by)})", node=block.name,
                    ))
        for expr in block.group_by:
            if not isinstance(expr, ast.ColumnRef):
                diagnostics.append(Diagnostic(
                    "qtree.grouping-sets", "error",
                    f"grouping expression {render_expr(expr)!r} is not a "
                    "plain column (engine rollup contract)", node=block.name,
                ))


# -- helpers ----------------------------------------------------------------


def _alias_visible(alias: str, chain: list[_Env]) -> bool:
    return any(alias in env for env in chain)


def _output_columns_of(node: QueryNode) -> Optional[list[str]]:
    try:
        return node.output_columns()
    except ReproError:
        return None
    except AssertionError:
        return None


def _iter_all_nodes(root: QueryNode) -> Iterator[QueryNode]:
    """Yield every QueryBlock *and* SetOpBlock in the tree (iter_blocks
    yields only QueryBlocks)."""
    yield root
    if isinstance(root, SetOpBlock):
        for branch in root.branches:
            yield from _iter_all_nodes(branch)
    elif isinstance(root, QueryBlock):
        for item in root.from_items:
            if item.is_derived and isinstance(item.subquery, QueryNode):
                yield from _iter_all_nodes(item.subquery)
        for sub in root.subquery_exprs():
            if isinstance(sub.query, QueryNode):
                yield from _iter_all_nodes(sub.query)
