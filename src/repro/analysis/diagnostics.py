"""Structured diagnostics for the optimizer sanitizer.

A :class:`Diagnostic` records one invariant violation: which rule fired,
where in the query tree or plan, and — when the violation was detected by
the transformation auditor — which transformation and which CBQT state
bitvector produced the corrupted artifact.  That attribution is the whole
point: a broken tree is useless to debug unless you know the exact
rewrite step that broke it.

Severities:

* ``"error"`` — the artifact violates a hard invariant (dangling
  reference, mis-typed join, conjunct applied twice); paranoid mode
  raises :class:`~repro.errors.VerificationError`.
* ``"warning"`` — suspicious but legal (e.g. a disconnected join graph,
  which a genuine cross join also produces); reported, never raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation found by a verifier."""

    #: rule identifier, e.g. ``"qtree.column-resolution"``
    rule: str
    severity: str
    message: str
    #: name of the query block / plan operator the violation anchors to
    node: str = ""
    #: transformation that produced the checked artifact (auditor only)
    transformation: Optional[str] = None
    #: CBQT state bitvector being explored when the violation appeared
    state: Optional[tuple[int, ...]] = None

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def format(self) -> str:
        where = f" at {self.node}" if self.node else ""
        blame = ""
        if self.transformation:
            blame = f" [after {self.transformation}"
            if self.state is not None:
                blame += f" state={''.join(map(str, self.state))}"
            blame += "]"
        return f"{self.severity}: {self.rule}{where}: {self.message}{blame}"


@dataclass
class DiagnosticReport:
    """A batch of diagnostics from one verification run."""

    context: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        return not self.errors

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def format(self) -> str:
        if not self.diagnostics:
            return f"{self.context or 'check'}: ok (no violations)"
        lines = [
            f"{self.context or 'check'}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(d.format() for d in self.diagnostics)
        return "\n".join(lines)


def attributed(
    diagnostics: list[Diagnostic],
    transformation: Optional[str],
    state: Optional[tuple[int, ...]] = None,
) -> list[Diagnostic]:
    """Copies of *diagnostics* attributed to a transformation + state."""
    if transformation is None and state is None:
        return diagnostics
    return [
        Diagnostic(
            d.rule, d.severity, d.message, d.node,
            transformation=transformation
            if d.transformation is None else d.transformation,
            state=state if d.state is None else d.state,
        )
        for d in diagnostics
    ]
