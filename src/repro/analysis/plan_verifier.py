"""Physical-plan invariant verifier.

Checks the contracts between the physical optimizer and the execution
engine that, when broken, produce silently wrong results rather than
crashes:

``plan.alias-consistency``
    every operator's advertised alias set matches its children (joins
    follow the semi/anti projection rule: only INNER and LEFT expose
    right-side columns);
``plan.join-method``
    the join method can implement the join type — ``ANTI_NA`` hashes
    only on a single bare key with no residual and never merges (the
    executor's three-valued-logic limits), and hash/merge right sides
    are not parameterised on left-side aliases (only nested loops can
    rebind per row);
``plan.join-keys``
    equi-key lists agree in length, are non-empty, and each key's side
    references only that side's aliases (or outer correlations);
``plan.cross-branch``
    expressions evaluated at a node reference only aliases produced in
    that node's subtree or genuine outer correlations — never a sibling
    branch of the plan;
``plan.conjunct-placement``
    every conjunct object is applied at exactly one operator (index
    binds *consume* their covered conjuncts; re-applying one at the
    join double-filters);
``plan.arity``
    operator output widths agree where computable (set-op branches,
    view bodies vs. declared column names);
``plan.shape``
    structural sanity — known join/set operators, aggregate lists hold
    aggregates, grouping-set indices in range, non-negative stopkeys,
    non-empty projections;
``plan.cost-sanity``
    costs and cardinalities are finite and non-negative (warnings for
    non-monotone cumulative costs, which stopkey scaling and
    parameterised inners legitimately produce).
"""

from __future__ import annotations

import math
from typing import Optional

from ..optimizer.plans import (
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    Join,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Plan,
    Project,
    SetOp,
    Sort,
    TableScan,
    ViewScan,
    WindowCompute,
)
from ..qtree.blocks import JOIN_TYPES
from ..qtree.exprutil import aliases_referenced
from ..sql import ast
from ..sql.render import render_expr
from .diagnostics import Diagnostic

_SETOPS = ("UNION", "UNION ALL", "INTERSECT", "MINUS")


class PlanVerifier:
    """Checks physical-plan invariants bottom-up."""

    #: total verify() invocations (read by the zero-overhead benchmark)
    calls = 0

    def verify(self, root: Plan) -> list[Diagnostic]:
        type(self).calls += 1
        diagnostics: list[Diagnostic] = []
        universe = _produced(root)
        placements: dict[int, list[str]] = {}
        self._visit(root, universe, frozenset(), placements, diagnostics, set())
        for node_labels in placements.values():
            if len(node_labels) > 1:
                diagnostics.append(Diagnostic(
                    "plan.conjunct-placement", "error",
                    "conjunct applied at multiple operators: "
                    + " / ".join(node_labels),
                    node=node_labels[0],
                ))
        return diagnostics

    # -- traversal ---------------------------------------------------------

    def _visit(
        self,
        plan: Plan,
        universe: frozenset[str],
        allowed_outer: frozenset[str],
        placements: dict[int, list[str]],
        diagnostics: list[Diagnostic],
        visited: set[int],
    ) -> None:
        # The annotation store legitimately shares identical sub-plans
        # within one tree; audit each object once or conjunct-placement
        # would see phantom duplicates.
        if id(plan) in visited:
            return
        visited.add(id(plan))
        self._check_costs(plan, diagnostics)
        self._check_aliases(plan, diagnostics)
        self._check_shape(plan, diagnostics)
        self._check_cross_branch(plan, universe, allowed_outer, diagnostics)
        for conjunct in _applied_conjuncts(plan):
            placements.setdefault(id(conjunct), []).append(plan.label())
        if isinstance(plan, Join):
            self._check_join(plan, diagnostics)
        if isinstance(plan, ViewScan):
            # a correlated view body legitimately references the aliases
            # the ViewScan declares it depends on
            allowed_outer = (
                allowed_outer
                | plan.lateral_refs
                | {alias for alias, _column in plan.correlation_keys}
            )
        for child in plan.children():
            self._visit(
                child, universe, allowed_outer, placements, diagnostics,
                visited,
            )

    # -- per-node checks ----------------------------------------------------

    def _check_costs(self, plan: Plan, diagnostics: list[Diagnostic]) -> None:
        for field_name, value in (("cost", plan.cost),
                                  ("cardinality", plan.cardinality)):
            if not math.isfinite(value) or value < 0:
                diagnostics.append(Diagnostic(
                    "plan.cost-sanity", "error",
                    f"{field_name} is {value!r}", node=plan.label(),
                ))
        if isinstance(plan, Limit):
            return  # stopkey legitimately scales the child's cost down
        for index, child in enumerate(plan.children()):
            if isinstance(plan, Join) and index == 1:
                continue  # parameterised inners cost less than standalone
            if child.cost > plan.cost * 1.000001 + 1e-6:
                diagnostics.append(Diagnostic(
                    "plan.cost-sanity", "warning",
                    f"cumulative cost {plan.cost:.2f} below child "
                    f"{child.label()!r} cost {child.cost:.2f}",
                    node=plan.label(),
                ))

    def _check_aliases(self, plan: Plan, diagnostics: list[Diagnostic]) -> None:
        expected: Optional[frozenset[str]] = None
        if isinstance(plan, (TableScan, IndexScan, ViewScan)):
            expected = frozenset([plan.alias])
        elif isinstance(plan, Join):
            expected = (
                plan.left.aliases | plan.right.aliases
                if plan.join_type in ("INNER", "LEFT")
                else plan.left.aliases
            )
        elif isinstance(plan, SetOp):
            expected = frozenset()
        elif plan.children():
            expected = plan.children()[0].aliases
        if expected is not None and plan.aliases != expected:
            diagnostics.append(Diagnostic(
                "plan.alias-consistency", "error",
                f"advertises aliases {sorted(plan.aliases)}, children imply "
                f"{sorted(expected)}", node=plan.label(),
            ))

    def _check_shape(self, plan: Plan, diagnostics: list[Diagnostic]) -> None:
        if isinstance(plan, Join) and plan.join_type not in JOIN_TYPES:
            diagnostics.append(Diagnostic(
                "plan.shape", "error",
                f"unknown join type {plan.join_type!r}", node=plan.label(),
            ))
        if isinstance(plan, SetOp):
            if plan.op not in _SETOPS:
                diagnostics.append(Diagnostic(
                    "plan.shape", "error",
                    f"unknown set operator {plan.op!r}", node=plan.label(),
                ))
            if len(plan.branches) < 2:
                diagnostics.append(Diagnostic(
                    "plan.shape", "error",
                    f"set operation with {len(plan.branches)} branch(es)",
                    node=plan.label(),
                ))
            widths = [w for b in plan.branches
                      if (w := _width(b)) is not None]
            if widths and any(w != widths[0] for w in widths):
                diagnostics.append(Diagnostic(
                    "plan.arity", "error",
                    f"set-op branches disagree on width: {widths}",
                    node=plan.label(),
                ))
        if isinstance(plan, GroupBy):
            for aggregate in plan.aggregates:
                if not (isinstance(aggregate, ast.FuncCall)
                        and aggregate.is_aggregate):
                    diagnostics.append(Diagnostic(
                        "plan.shape", "error",
                        f"non-aggregate {render_expr(aggregate)!r} in "
                        "aggregate list", node=plan.label(),
                    ))
            if plan.grouping_sets is not None:
                for grouping_set in plan.grouping_sets:
                    for index in grouping_set:
                        if not 0 <= index < len(plan.group_exprs):
                            diagnostics.append(Diagnostic(
                                "plan.shape", "error",
                                f"grouping-set index {index} outside group "
                                f"key list (len {len(plan.group_exprs)})",
                                node=plan.label(),
                            ))
        if isinstance(plan, Limit) and plan.count < 0:
            diagnostics.append(Diagnostic(
                "plan.shape", "error",
                f"negative stopkey {plan.count}", node=plan.label(),
            ))
        if isinstance(plan, Project) and not plan.select_items:
            diagnostics.append(Diagnostic(
                "plan.shape", "error", "empty projection", node=plan.label(),
            ))
        if isinstance(plan, ViewScan):
            if not plan.column_names:
                diagnostics.append(Diagnostic(
                    "plan.shape", "error",
                    "view scan declares no output columns",
                    node=plan.label(),
                ))
            width = _width(plan.child)
            if width is not None and width != len(plan.column_names):
                diagnostics.append(Diagnostic(
                    "plan.arity", "error",
                    f"view declares {len(plan.column_names)} columns, body "
                    f"produces {width}", node=plan.label(),
                ))
        if isinstance(plan, IndexScan):
            self._check_index_scan(plan, diagnostics)

    def _check_index_scan(
        self, plan: IndexScan, diagnostics: list[Diagnostic]
    ) -> None:
        index_columns = list(plan.index.columns)
        bound = [column for column, _expr in plan.eq_binds]
        if bound != index_columns[: len(bound)]:
            diagnostics.append(Diagnostic(
                "plan.shape", "error",
                f"equality binds {bound} are not a prefix of index columns "
                f"{index_columns}", node=plan.label(),
            ))
        if plan.range_bind is not None:
            column = plan.range_bind[0]
            if len(bound) >= len(index_columns) or (
                index_columns[len(bound)] != column
            ):
                diagnostics.append(Diagnostic(
                    "plan.shape", "error",
                    f"range bind on {column!r} does not follow the "
                    f"equality prefix {bound} of {index_columns}",
                    node=plan.label(),
                ))
        applied = {id(c) for c in plan.post_conjuncts}
        for conjunct in plan.covered_conjuncts:
            if id(conjunct) in applied:
                diagnostics.append(Diagnostic(
                    "plan.conjunct-placement", "error",
                    "covered conjunct "
                    f"{render_expr(conjunct)!r} re-applied as post filter",
                    node=plan.label(),
                ))

    def _check_join(self, plan: Join, diagnostics: list[Diagnostic]) -> None:
        if isinstance(plan, (HashJoin, MergeJoin)):
            method = "hash" if isinstance(plan, HashJoin) else "merge"
            if len(plan.left_keys) != len(plan.right_keys):
                diagnostics.append(Diagnostic(
                    "plan.join-keys", "error",
                    f"{len(plan.left_keys)} left keys vs "
                    f"{len(plan.right_keys)} right keys", node=plan.label(),
                ))
            if not plan.left_keys:
                diagnostics.append(Diagnostic(
                    "plan.join-keys", "error",
                    f"{method} join with no equi-keys", node=plan.label(),
                ))
            left_produced = _produced(plan.left)
            right_produced = _produced(plan.right)
            for side, keys, own, other in (
                ("left", plan.left_keys, left_produced, right_produced),
                ("right", plan.right_keys, right_produced, left_produced),
            ):
                for key in keys:
                    leaked = _qualifiers(key) & other
                    if leaked:
                        diagnostics.append(Diagnostic(
                            "plan.join-keys", "error",
                            f"{side} key {render_expr(key)!r} references "
                            f"the other side's aliases {sorted(leaked)}",
                            node=plan.label(),
                        ))
            if plan.join_type == "ANTI_NA":
                if isinstance(plan, MergeJoin):
                    diagnostics.append(Diagnostic(
                        "plan.join-method", "error",
                        "merge join cannot implement null-aware antijoin",
                        node=plan.label(),
                    ))
                elif len(plan.left_keys) != 1 or plan.residual_conjuncts:
                    diagnostics.append(Diagnostic(
                        "plan.join-method", "error",
                        "hash null-aware antijoin requires exactly one bare "
                        "key and no residual", node=plan.label(),
                    ))
            parameterised = _unbound(plan.right) & left_produced
            if parameterised:
                diagnostics.append(Diagnostic(
                    "plan.join-method", "error",
                    f"{method} join right side is parameterised on left "
                    f"aliases {sorted(parameterised)} (only nested loops "
                    "rebind per row)", node=plan.label(),
                ))

    def _check_cross_branch(
        self,
        plan: Plan,
        universe: frozenset[str],
        allowed_outer: frozenset[str],
        diagnostics: list[Diagnostic],
    ) -> None:
        if isinstance(plan, IndexScan):
            # bind expressions are the parameterisation mechanism — they
            # reference the nested-loop outer side by design (checked at
            # hash/merge joins, where rebinding is impossible)
            exprs = list(plan.post_conjuncts)
        else:
            exprs = _local_exprs(plan)
        available = _produced(plan)
        for expr in exprs:
            # refs outside the plan's whole universe are correlations into
            # an enclosing plan; refs inside the universe but outside this
            # subtree leak from a sibling branch
            leaked = (
                (_qualifiers(expr) & universe) - available - allowed_outer
            )
            if leaked:
                diagnostics.append(Diagnostic(
                    "plan.cross-branch", "error",
                    f"expression {render_expr(expr)!r} references sibling-"
                    f"branch aliases {sorted(leaked)}", node=plan.label(),
                ))


# -- helpers ----------------------------------------------------------------


def _produced(plan: Plan, cache: Optional[dict[int, frozenset[str]]] = None
              ) -> frozenset[str]:
    """All aliases bound anywhere in the subtree (unlike ``plan.aliases``,
    semi/anti joins do not hide their right side here)."""
    if cache is None:
        cache = {}
    if id(plan) in cache:
        return cache[id(plan)]
    if isinstance(plan, (TableScan, IndexScan, ViewScan)):
        result = frozenset([plan.alias])
    else:
        result = frozenset().union(
            *(_produced(c, cache) for c in plan.children())
        ) if plan.children() else frozenset()
    cache[id(plan)] = result
    return result


def _unbound(plan: Plan) -> frozenset[str]:
    """Aliases the subtree needs bound from outside it (index-NL binds,
    lateral views, correlated pushed-down filters)."""
    needed: set[str] = set()
    for expr in _local_exprs(plan):
        needed |= _qualifiers(expr)
    if isinstance(plan, ViewScan):
        needed |= set(plan.lateral_refs)
        needed |= {alias for alias, _column in plan.correlation_keys}
    for child in plan.children():
        child_unbound = _unbound(child)
        if isinstance(plan, Join) and child is plan.right:
            child_unbound -= _produced(plan.left)
        needed |= child_unbound
    return frozenset(needed) - _produced(plan)


def _local_exprs(plan: Plan) -> list[ast.Expr]:
    """Expressions evaluated *at* this operator (children excluded)."""
    if isinstance(plan, TableScan):
        return list(plan.conjuncts)
    if isinstance(plan, IndexScan):
        exprs = [e for _c, e in plan.eq_binds]
        if plan.range_bind is not None:
            exprs.append(plan.range_bind[2])
        return exprs + list(plan.post_conjuncts)
    if isinstance(plan, ViewScan):
        return list(plan.conjuncts)
    if isinstance(plan, NestedLoopJoin):
        return list(plan.conjuncts)
    if isinstance(plan, (HashJoin, MergeJoin)):
        return (list(plan.left_keys) + list(plan.right_keys)
                + list(plan.residual_conjuncts))
    if isinstance(plan, Filter):
        return list(plan.conjuncts)
    if isinstance(plan, GroupBy):
        return list(plan.group_exprs) + list(plan.aggregates)
    if isinstance(plan, WindowCompute):
        return list(plan.windows)
    if isinstance(plan, Sort):
        return [o.expr for o in plan.order_by]
    if isinstance(plan, Project):
        return [i.expr for i in plan.select_items]
    return []


def _applied_conjuncts(plan: Plan) -> list[ast.Expr]:
    """Filter conjuncts this operator *applies* (for exactly-once
    placement).  Join keys, index binds and covered conjuncts are not
    applications — binds consume their covered conjuncts."""
    if isinstance(plan, TableScan):
        return list(plan.conjuncts)
    if isinstance(plan, IndexScan):
        return list(plan.post_conjuncts)
    if isinstance(plan, ViewScan):
        return list(plan.conjuncts)
    if isinstance(plan, NestedLoopJoin):
        return list(plan.conjuncts)
    if isinstance(plan, (HashJoin, MergeJoin)):
        return list(plan.residual_conjuncts)
    if isinstance(plan, Filter):
        return list(plan.conjuncts)
    return []


def _qualifiers(expr: ast.Expr) -> set[str]:
    """Alias qualifiers referenced by *expr*, subqueries included."""
    return set(aliases_referenced(expr))


def _width(plan: Plan) -> Optional[int]:
    """Output column count, where statically computable."""
    if isinstance(plan, Project):
        return len(plan.select_items)
    if isinstance(plan, ViewScan):
        return len(plan.column_names)
    if isinstance(plan, SetOp):
        for branch in plan.branches:
            width = _width(branch)
            if width is not None:
                return width
        return None
    if isinstance(plan, (Filter, Distinct, Sort, Limit)):
        return _width(plan.children()[0])
    return None
