"""Workload substrate: schemas, query generation, runner, aggregation."""

from .querygen import EXPENSIVE_FUNCTION, GeneratedQuery, MixWeights, QueryGenerator
from .runner import (
    ConfigMeasurement,
    QueryOutcome,
    WorkloadResult,
    register_workload_functions,
    run_workload,
    verify_result_equivalence,
)
from .plan_digest import (
    corpus_digests,
    normalize_generated_names,
    structural_digest,
)
from .schemas import (
    AppsSchema,
    AppsSchemaBuilder,
    TableInfo,
    apps_database,
    hr_database,
    hr_schema,
    load_hr_data,
)
from .topn import (
    DEFAULT_FRACTIONS,
    CurvePoint,
    DegradationStats,
    degradation_stats,
    optimization_time_increase_percent,
    summarize,
    top_n_curve,
)

__all__ = [
    "EXPENSIVE_FUNCTION",
    "GeneratedQuery",
    "MixWeights",
    "QueryGenerator",
    "ConfigMeasurement",
    "QueryOutcome",
    "corpus_digests",
    "normalize_generated_names",
    "structural_digest",
    "WorkloadResult",
    "register_workload_functions",
    "run_workload",
    "verify_result_equivalence",
    "AppsSchema",
    "AppsSchemaBuilder",
    "TableInfo",
    "apps_database",
    "hr_database",
    "hr_schema",
    "load_hr_data",
    "DEFAULT_FRACTIONS",
    "CurvePoint",
    "DegradationStats",
    "degradation_stats",
    "optimization_time_increase_percent",
    "summarize",
    "top_n_curve",
]
