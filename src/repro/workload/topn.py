"""Top-N% improvement curves and degradation statistics — the aggregate
measures Figures 2-4 of the paper report.

"Top N is defined as the N longest running queries without cost-based
transformation": queries are ranked by their *baseline* total run time,
the top fraction is kept, and the improvement is the aggregate ratio of
baseline to treated total time over that subset, expressed as a
percentage (the paper's "improved by 387%" style)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .runner import QueryOutcome

#: the fractions the paper's figures sweep
DEFAULT_FRACTIONS = (0.05, 0.10, 0.25, 0.50, 0.80, 1.00)


@dataclass
class CurvePoint:
    fraction: float
    n_queries: int
    baseline_total: float
    treated_total: float

    @property
    def improvement_percent(self) -> float:
        """(baseline/treated - 1) * 100 over the subset."""
        if self.treated_total <= 0:
            return 0.0
        return (self.baseline_total / self.treated_total - 1.0) * 100.0


def top_n_curve(
    outcomes: Sequence[QueryOutcome],
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> list[CurvePoint]:
    """Improvement as a function of the top-N% most expensive queries."""
    ranked = sorted(
        outcomes, key=lambda o: o.baseline.total_time, reverse=True
    )
    points = []
    for fraction in fractions:
        count = max(1, int(round(len(ranked) * fraction)))
        subset = ranked[:count]
        points.append(
            CurvePoint(
                fraction,
                count,
                sum(o.baseline.total_time for o in subset),
                sum(o.treated.total_time for o in subset),
            )
        )
    return points


@dataclass
class DegradationStats:
    """The paper's "a small fraction, X%, of the affected queries
    degraded by Y%"."""

    n_total: int
    n_degraded: int
    degraded_percent_of_queries: float
    average_degradation_percent: float


def degradation_stats(
    outcomes: Sequence[QueryOutcome], threshold: float = 1.0
) -> DegradationStats:
    degraded = [o for o in outcomes if o.improvement_ratio < threshold]
    if degraded:
        base = sum(o.baseline.total_time for o in degraded)
        treated = sum(o.treated.total_time for o in degraded)
        average = (treated / base - 1.0) * 100.0 if base else 0.0
    else:
        average = 0.0
    n_total = len(outcomes)
    return DegradationStats(
        n_total,
        len(degraded),
        100.0 * len(degraded) / n_total if n_total else 0.0,
        average,
    )


def optimization_time_increase_percent(
    outcomes: Sequence[QueryOutcome],
) -> float:
    """Aggregate optimization-effort increase of treated over baseline,
    measured in *fresh join-order enumerations* — the deterministic
    proxy for optimizer time.  Unlike states costed, this currency is
    what the subplan memo (:mod:`repro.optimizer.memo`) actually saves:
    states whose join cores were already enumerated under an earlier
    state (or the baseline parse) hit the memo and pay nothing, so the
    memo's cross-state sharing shows up here as a smaller increase.
    Charged at :data:`~repro.workload.runner.OPT_ENUMERATION_COST` work
    units per enumeration when a benchmark needs absolute numbers."""
    base = sum(max(o.baseline.opt_enumerations, 1) for o in outcomes)
    treated = sum(o.treated.opt_enumerations for o in outcomes)
    if base <= 0:
        return 0.0
    return (treated / base - 1.0) * 100.0


def summarize(outcomes: Sequence[QueryOutcome]) -> dict:
    """One-stop summary used by the benchmark reports."""
    curve = top_n_curve(outcomes)
    stats = degradation_stats(outcomes)
    return {
        "n_affected": len(outcomes),
        "overall_improvement_percent": curve[-1].improvement_percent,
        "curve": [
            (p.fraction, round(p.improvement_percent, 1)) for p in curve
        ],
        "degraded_query_percent": round(stats.degraded_percent_of_queries, 1),
        "average_degradation_percent": round(
            stats.average_degradation_percent, 1
        ),
        "optimization_time_increase_percent": round(
            optimization_time_increase_percent(outcomes), 1
        ),
    }
