"""Deterministic query generation over an applications schema.

Reproduces the *class mix* of the paper's workload: most queries are
simple select-project-join; a configurable ~8% carry the constructs the
cost-based transformations apply to (subqueries, group-by / distinct /
union-all views, set operators, disjunctions, ROWNUM views) — matching
"only a small fraction — about 8% — of these queries have subqueries,
GROUP BY clause, SELECT DISTINCT, or UNION ALL views" (§4).

Each :class:`GeneratedQuery` records its class and the transformations it
is *relevant* to, so experiments can report over the affected subset the
way the paper does (e.g. Figure 3 reports over the 5% of the workload
unnesting touches).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .schemas import AppsSchema, TableInfo

#: the expensive UDF the rownum/pullup query class uses; the runner
#: registers it on the database.
EXPENSIVE_FUNCTION = "EXPENSIVE_UDF"


@dataclass
class GeneratedQuery:
    name: str
    sql: str
    query_class: str
    relevant: frozenset[str] = frozenset()


@dataclass
class MixWeights:
    """Relative frequency of each query class."""

    spj: float = 0.92
    exists: float = 0.012
    not_exists: float = 0.008
    in_multi: float = 0.010
    not_in: float = 0.006
    agg_subquery: float = 0.012
    groupby_view: float = 0.008
    distinct_view: float = 0.006
    gbp: float = 0.008
    union_all: float = 0.004
    setop: float = 0.002
    or_pred: float = 0.002
    rownum_pullup: float = 0.002

    def items(self) -> list[tuple[str, float]]:
        return [(k, v) for k, v in vars(self).items()]


class QueryGenerator:
    """Generates queries against an :class:`AppsSchema`."""

    def __init__(self, schema: AppsSchema, seed: int = 101,
                 weights: MixWeights | None = None):
        self._schema = schema
        self._rng = random.Random(seed)
        self._weights = weights or MixWeights()
        self._counter = 0

    # -- public --------------------------------------------------------------

    def generate(self, count: int) -> list[GeneratedQuery]:
        classes = [name for name, _w in self._weights.items()]
        weights = [w for _n, w in self._weights.items()]
        result = []
        for _ in range(count):
            query_class = self._rng.choices(classes, weights)[0]
            result.append(self.generate_class(query_class))
        return result

    def generate_class(self, query_class: str) -> GeneratedQuery:
        self._counter += 1
        builder = getattr(self, f"_gen_{query_class}")
        sql, relevant = builder()
        return GeneratedQuery(
            f"q{self._counter:05d}_{query_class}", sql, query_class,
            frozenset(relevant),
        )

    # -- shared pieces ------------------------------------------------------------

    def _edge(self):
        """A random FK edge (child, parent, fk_column, parent_pk)."""
        return self._rng.choice(self._schema.joinable_pairs())

    def _filter(self, alias: str, info: TableInfo, tight: bool = False) -> str:
        column = self._rng.choice(info.numeric_columns)
        lo, hi = info.value_range
        if tight:
            value = self._rng.randint(lo, max(lo, lo + (hi - lo) // 10))
            op = self._rng.choice(["=", "<"])
        else:
            value = self._rng.randint(lo, hi)
            op = self._rng.choice(["<", "<=", ">", ">="])
        return f"{alias}.{column} {op} {value}"

    def _join_chain(self, length: int):
        """A connected chain of FK joins: returns (tables, aliases,
        join_conjuncts).  Walks child->parent and parent->child edges."""
        pairs = self._schema.joinable_pairs()
        child, parent, fk, pk = self._rng.choice(pairs)
        tables = [child, parent]
        aliases = ["t0", "t1"]
        joins = [f"t0.{fk} = t1.{pk}"]
        while len(tables) < length:
            # extend from any table already in the chain
            anchor_idx = self._rng.randrange(len(tables))
            anchor = tables[anchor_idx]
            extensions = [
                (c, p, fkc, ppk) for (c, p, fkc, ppk) in pairs
                if p.name == anchor.name or c.name == anchor.name
            ]
            if not extensions:
                break
            c, p, fkc, ppk = self._rng.choice(extensions)
            new_table = p if c.name == anchor.name else c
            if any(t.name == new_table.name for t in tables):
                break
            alias = f"t{len(tables)}"
            if c.name == anchor.name:
                joins.append(f"{aliases[anchor_idx]}.{fkc} = {alias}.{ppk}")
            else:
                joins.append(f"{alias}.{fkc} = {aliases[anchor_idx]}.{ppk}")
            tables.append(new_table)
            aliases.append(alias)
        return tables, aliases, joins

    @staticmethod
    def _select_list(tables, aliases, limit: int = 3) -> str:
        items = []
        for info, alias in zip(tables, aliases):
            items.append(f"{alias}.{info.pk}")
            for column in info.numeric_columns[:1]:
                items.append(f"{alias}.{column}")
        return ", ".join(items[:limit])

    # -- query classes --------------------------------------------------------------

    def _gen_spj(self):
        length = self._rng.choices([1, 2, 3, 4], [0.25, 0.4, 0.25, 0.1])[0]
        if length == 1:
            info = self._rng.choice(list(self._schema.tables.values()))
            where = self._filter("t0", info)
            sql = (
                f"SELECT t0.{info.pk}, t0.{info.numeric_columns[0]} "
                f"FROM {info.name} t0 WHERE {where}"
            )
            return sql, set()
        tables, aliases, joins = self._join_chain(length)
        conjuncts = list(joins)
        for info, alias in zip(tables, aliases):
            if self._rng.random() < 0.5:
                conjuncts.append(self._filter(alias, info))
        from_list = ", ".join(
            f"{info.name} {alias}" for info, alias in zip(tables, aliases)
        )
        sql = (
            f"SELECT {self._select_list(tables, aliases)} FROM {from_list} "
            f"WHERE {' AND '.join(conjuncts)}"
        )
        return sql, set()

    def _gen_exists(self, negate: bool = False):
        child, parent, fk, pk = self._edge()
        keyword = "NOT EXISTS" if negate else "EXISTS"
        inner_filter = self._filter("c", child)
        outer_filter = self._filter("p", parent)
        sql = (
            f"SELECT p.{pk}, p.{parent.numeric_columns[0]} FROM {parent.name} p "
            f"WHERE {outer_filter} AND {keyword} "
            f"(SELECT 1 FROM {child.name} c WHERE c.{fk} = p.{pk} "
            f"AND {inner_filter})"
        )
        return sql, {"subquery_merge", "unnest_view"}

    def _gen_not_exists(self):
        return self._gen_exists(negate=True)

    def _gen_in_multi(self):
        # p.id IN (two-table subquery) -> must generate an inline view.
        child, parent, fk, pk = self._edge()
        second = self._second_edge_for(child)
        if second is None:
            return self._gen_exists()
        c2, fk2, pk2 = second
        inner_filter = self._filter("c2", c2)
        outer_filter = self._filter("p", parent)
        sql = (
            f"SELECT p.{pk}, p.{parent.numeric_columns[0]} FROM {parent.name} p "
            f"WHERE {outer_filter} AND p.{pk} IN "
            f"(SELECT c.{fk} FROM {child.name} c, {c2.name} c2 "
            f"WHERE c.{fk2} = c2.{pk2} AND {inner_filter})"
        )
        return sql, {"unnest_view"}

    def _second_edge_for(self, child: TableInfo):
        """Another FK edge out of *child* (for multi-table subqueries)."""
        for column, parent, ppk in child.fk_edges:
            yieldable = (self._schema.tables[parent], column, ppk)
            if self._rng.random() < 0.7:
                return yieldable
        for column, parent, ppk in child.fk_edges:
            return (self._schema.tables[parent], column, ppk)
        return None

    def _gen_not_in(self):
        child, parent, fk, pk = self._edge()
        inner_filter = self._filter("c", child)
        sql = (
            f"SELECT p.{pk} FROM {parent.name} p "
            f"WHERE p.{pk} NOT IN "
            f"(SELECT c.{fk} FROM {child.name} c WHERE {inner_filter})"
        )
        return sql, {"subquery_merge", "unnest_view"}

    def _gen_agg_subquery(self):
        # the Q1 pattern: above-average within the correlation group
        child, parent, fk, pk = self._edge()
        measure = self._rng.choice(child.numeric_columns)
        outer_filter = self._filter("a", child, tight=self._rng.random() < 0.5)
        sql = (
            f"SELECT a.{child.pk}, a.{measure} FROM {child.name} a "
            f"WHERE {outer_filter} AND a.{measure} > "
            f"(SELECT AVG(b.{measure}) FROM {child.name} b "
            f"WHERE b.{fk} = a.{fk})"
        )
        return sql, {"unnest_view", "groupby_merge"}

    def _gen_groupby_view(self):
        child, parent, fk, pk = self._edge()
        measure = self._rng.choice(child.numeric_columns)
        outer_filter = self._filter("m", parent, tight=True)
        sql = (
            f"SELECT m.{pk}, v.total, v.avg_m FROM {parent.name} m, "
            f"(SELECT c.{fk} AS grp, SUM(c.{measure}) AS total, "
            f"AVG(c.{measure}) AS avg_m FROM {child.name} c "
            f"GROUP BY c.{fk}) v "
            f"WHERE v.grp = m.{pk} AND {outer_filter}"
        )
        return sql, {"groupby_merge", "jppd"}

    def _gen_distinct_view(self):
        child, parent, fk, pk = self._edge()
        inner_filter = self._filter("c", child)
        outer_filter = self._filter("m", parent)
        sql = (
            f"SELECT m.{pk}, m.{parent.numeric_columns[0]} FROM {parent.name} m, "
            f"(SELECT DISTINCT c.{fk} AS k FROM {child.name} c "
            f"WHERE {inner_filter}) v "
            f"WHERE v.k = m.{pk} AND {outer_filter}"
        )
        return sql, {"groupby_merge", "jppd"}

    def _gen_gbp(self):
        # Prefer aggregating the largest (history) tables: eager
        # aggregation pays when the pre-aggregated side is big and the
        # grouped key count is small.
        edges = self._schema.joinable_pairs()
        big_edges = [
            e for e in edges if e[0].kind == "history"
        ] or edges
        child, parent, fk, pk = self._rng.choice(big_edges)
        measure = self._rng.choice(child.numeric_columns)
        group_col = self._rng.choice(parent.numeric_columns)
        conjuncts = [f"c.{fk} = m.{pk}"]
        tables = [f"{parent.name} m", f"{child.name} c"]
        shape = self._rng.random()
        siblings = [
            (c2, fk2) for (c2, p2, fk2, _pk2) in edges
            if p2.name == parent.name and c2.name != child.name
        ]
        if shape < 0.4 and siblings:
            # Fan-out shape: a second child of the same parent makes the
            # baseline cross-multiply the two child sets per parent row
            # before aggregating — the case where eager aggregation wins
            # by integer factors (the paper's >200% tail).
            sibling, sibling_fk = self._rng.choice(siblings)
            tables.append(f"{sibling.name} d")
            conjuncts.append(f"d.{sibling_fk} = m.{pk}")
        elif shape < 0.7:
            # Chain shape: the pre-aggregated rows pass another join.
            for column, gp_name, gp_pk in parent.fk_edges:
                gp = self._schema.tables[gp_name]
                tables.append(f"{gp.name} g")
                conjuncts.append(f"m.{column} = g.{gp_pk}")
                break
        if self._rng.random() < 0.35:
            conjuncts.append(self._filter("m", parent))
        sql = (
            f"SELECT m.{group_col}, SUM(c.{measure}), COUNT(c.{measure}) "
            f"FROM {', '.join(tables)} "
            f"WHERE {' AND '.join(conjuncts)} "
            f"GROUP BY m.{group_col}"
        )
        return sql, {"groupby_placement"}

    def _gen_union_all(self):
        # two branches sharing the parent join: factorable
        child, parent, fk, pk = self._edge()
        f1 = self._filter("c", child, tight=True)
        f2 = self._filter("c", child, tight=True)
        sql = (
            f"SELECT m.{pk}, c.{child.numeric_columns[0]} "
            f"FROM {parent.name} m, {child.name} c "
            f"WHERE c.{fk} = m.{pk} AND {f1} "
            f"UNION ALL "
            f"SELECT m.{pk}, c.{child.numeric_columns[1 % len(child.numeric_columns)]} "
            f"FROM {parent.name} m, {child.name} c "
            f"WHERE c.{fk} = m.{pk} AND {f2}"
        )
        return sql, {"join_factorization"}

    def _gen_setop(self):
        child, parent, fk, pk = self._edge()
        op = self._rng.choice(["MINUS", "INTERSECT"])
        f1 = self._filter("c", child)
        sql = (
            f"SELECT c.{fk} FROM {child.name} c WHERE {f1} "
            f"{op} "
            f"SELECT m.{pk} FROM {parent.name} m "
            f"WHERE {self._filter('m', parent)}"
        )
        return sql, {"setop_to_join"}

    def _gen_or_pred(self):
        child, parent, fk, pk = self._edge()
        f1 = self._filter("c", child, tight=True)
        f2 = self._filter("m", parent, tight=True)
        sql = (
            f"SELECT c.{child.pk}, m.{pk} FROM {child.name} c, {parent.name} m "
            f"WHERE c.{fk} = m.{pk} AND ({f1} OR {f2})"
        )
        return sql, {"or_expansion"}

    def _gen_rownum_pullup(self):
        info = self._rng.choice(self._schema.tables_of_kind("detail")
                                or list(self._schema.tables.values()))
        measure = self._rng.choice(info.numeric_columns)
        limit = self._rng.choice([10, 20, 50])
        sql = (
            f"SELECT v.{info.pk}, v.{measure} FROM "
            f"(SELECT d.{info.pk}, d.{measure} FROM {info.name} d "
            f"WHERE {EXPENSIVE_FUNCTION}(d.{measure}) = 1 "
            f"ORDER BY d.{measure} DESC) v "
            f"WHERE rownum <= {limit}"
        )
        return sql, {"predicate_pullup"}
