"""Workload schemas.

Two schemas back the experiments:

* :func:`hr_schema` — the human-resources demo schema every worked
  example in the paper runs against (employees, departments, locations,
  job_history, jobs, accounts), with the paper's foreign keys and the
  indexes its TIS-vs-unnest discussion assumes.

* :class:`AppsSchemaBuilder` — the substitute for the proprietary
  Oracle Applications schema (~14,000 tables in the paper).  It
  generates a module-structured schema (HR / FIN / OE / CRM / SCM by
  default): per module a few small *master* tables, mid-size *detail*
  tables with foreign keys into the masters, and large *history/line*
  tables with skewed foreign keys into the details.  Table sizes, index
  placement and NULL rates are controlled and deterministic per seed.
  The experiments touch only a handful of tables per query (the paper's
  average is 8), so fidelity lies in the size/index/join-path
  distribution, not the raw table count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..catalog import datagen
from ..database import Database

# ---------------------------------------------------------------------------
# HR demo schema (paper worked examples)
# ---------------------------------------------------------------------------

HR_DDL = [
    """CREATE TABLE regions (
        region_id INT PRIMARY KEY,
        region_name VARCHAR(30) NOT NULL)""",
    """CREATE TABLE countries (
        country_id INT PRIMARY KEY,
        country_name VARCHAR(40) NOT NULL,
        region_id INT REFERENCES regions(region_id))""",
    """CREATE TABLE locations (
        loc_id INT PRIMARY KEY,
        city VARCHAR(30),
        country_id INT REFERENCES countries(country_id))""",
    """CREATE TABLE departments (
        dept_id INT PRIMARY KEY,
        department_name VARCHAR(30) NOT NULL,
        loc_id INT REFERENCES locations(loc_id))""",
    """CREATE TABLE jobs (
        job_id INT PRIMARY KEY,
        job_title VARCHAR(35) NOT NULL,
        min_salary INT,
        max_salary INT)""",
    """CREATE TABLE employees (
        emp_id INT PRIMARY KEY,
        employee_name VARCHAR(25) NOT NULL,
        first_name VARCHAR(20),
        last_name VARCHAR(25),
        salary NUMBER,
        dept_id INT REFERENCES departments(dept_id),
        job_id INT REFERENCES jobs(job_id),
        mgr_id INT,
        hire_date DATE)""",
    """CREATE TABLE job_history (
        emp_id INT NOT NULL REFERENCES employees(emp_id),
        job_id INT REFERENCES jobs(job_id),
        job_title VARCHAR(35),
        dept_id INT,
        start_date DATE,
        end_date DATE)""",
    """CREATE TABLE accounts (
        acct_id INT NOT NULL,
        time INT NOT NULL,
        balance NUMBER)""",
    "CREATE INDEX emp_dept_ix ON employees (dept_id)",
    "CREATE INDEX emp_job_ix ON employees (job_id)",
    "CREATE INDEX jh_emp_ix ON job_history (emp_id)",
    "CREATE INDEX jh_dept_ix ON job_history (dept_id)",
    "CREATE INDEX dept_loc_ix ON departments (loc_id)",
    "CREATE INDEX loc_country_ix ON locations (country_id)",
    "CREATE INDEX acct_ix ON accounts (acct_id, time)",
]


def hr_schema(db: Database) -> None:
    """Create the HR demo schema in *db*."""
    for ddl in HR_DDL:
        db.execute_ddl(ddl)


def load_hr_data(db: Database, scale: int = 1, seed: int = 42) -> None:
    """Populate the HR schema deterministically.

    *scale* multiplies the employee/job_history row counts (scale 1:
    1,000 employees, 3,000 job_history rows).
    """
    rng = random.Random(seed)
    n_regions = 4
    n_countries = 20
    n_locations = 30
    n_departments = 40
    n_jobs = 15
    n_employees = 1000 * scale
    n_history = 3000 * scale

    db.insert("regions", [
        {"region_id": i, "region_name": f"region_{i}"}
        for i in range(1, n_regions + 1)
    ])
    db.insert("countries", [
        {
            "country_id": i,
            "country_name": f"country_{i}",
            "region_id": rng.randint(1, n_regions),
        }
        for i in range(1, n_countries + 1)
    ])
    db.insert("locations", [
        {
            "loc_id": i,
            "city": f"city_{i}",
            # biased toward low country ids so the paper queries'
            # `country_id = 1` / `IN (1, 2)` filters select real data
            "country_id": min(rng.randint(1, n_countries),
                              rng.randint(1, 6)),
        }
        for i in range(1, n_locations + 1)
    ])
    db.insert("departments", [
        {
            "dept_id": i,
            "department_name": f"dept_{i}",
            "loc_id": rng.randint(1, n_locations),
        }
        for i in range(1, n_departments + 1)
    ])
    db.insert("jobs", [
        {
            "job_id": i,
            "job_title": f"job_{i}",
            "min_salary": 1000 * i,
            "max_salary": 2000 * i,
        }
        for i in range(1, n_jobs + 1)
    ])
    date_gen = datagen.iso_date(1990, 2006)
    db.insert("employees", [
        {
            "emp_id": i,
            "employee_name": f"emp_{i}",
            "first_name": f"fn_{i}",
            "last_name": f"ln_{i}",
            "salary": round(rng.uniform(1000.0, 30000.0), 2),
            "dept_id": (
                None if rng.random() < 0.02 else rng.randint(1, n_departments)
            ),
            "job_id": rng.randint(1, n_jobs),
            "mgr_id": None if rng.random() < 0.1 else rng.randint(1, max(i, 2) - 1 or 1),
            "hire_date": date_gen(rng, i),
        }
        for i in range(1, n_employees + 1)
    ])
    db.insert("job_history", [
        {
            "emp_id": rng.randint(1, n_employees),
            "job_id": rng.randint(1, n_jobs),
            "job_title": f"job_{rng.randint(1, n_jobs)}",
            "dept_id": rng.randint(1, n_departments),
            "start_date": date_gen(rng, i),
            "end_date": date_gen(rng, i),
        }
        for i in range(n_history)
    ])
    db.insert("accounts", [
        {
            "acct_id": acct,
            "time": t,
            "balance": round(rng.uniform(-5000.0, 50000.0), 2),
        }
        for acct in range(1, 40 * scale + 1)
        for t in range(1, 25)
    ])
    db.analyze()


def hr_database(scale: int = 1, seed: int = 42) -> Database:
    """Convenience: a Database with the HR schema loaded and analyzed."""
    db = Database()
    hr_schema(db)
    load_hr_data(db, scale, seed)
    return db


# ---------------------------------------------------------------------------
# Synthetic "applications" schema (substitute for Oracle Applications)
# ---------------------------------------------------------------------------


@dataclass
class TableInfo:
    """What the query generator needs to know about one generated table."""

    name: str
    kind: str                      # "master" | "detail" | "history"
    row_count: int
    pk: str
    numeric_columns: list[str]
    fk_edges: list[tuple[str, str, str]] = field(default_factory=list)
    # (local_column, parent_table, parent_pk)
    indexed_columns: set[str] = field(default_factory=set)
    value_range: tuple[int, int] = (1, 1000)


@dataclass
class AppsSchema:
    """Handle onto a generated applications schema."""

    modules: list[str]
    tables: dict[str, TableInfo]

    def tables_of_kind(self, kind: str) -> list[TableInfo]:
        return [t for t in self.tables.values() if t.kind == kind]

    def joinable_pairs(self) -> list[tuple[TableInfo, TableInfo, str, str]]:
        """(child, parent, child_fk, parent_pk) for every FK edge."""
        pairs = []
        for info in self.tables.values():
            for column, parent, parent_pk in info.fk_edges:
                pairs.append((info, self.tables[parent], column, parent_pk))
        return pairs


class AppsSchemaBuilder:
    """Builds the synthetic applications schema inside a Database."""

    DEFAULT_MODULES = ("hr", "fin", "oe", "crm", "scm")

    def __init__(
        self,
        modules: tuple[str, ...] = DEFAULT_MODULES,
        masters_per_module: int = 2,
        details_per_module: int = 3,
        histories_per_module: int = 2,
        master_rows: int = 50,
        detail_rows: int = 2000,
        history_rows: int = 6000,
        index_fraction: float = 0.6,
        null_fraction: float = 0.05,
        seed: int = 7,
    ):
        self.modules = list(modules)
        self.masters_per_module = masters_per_module
        self.details_per_module = details_per_module
        self.histories_per_module = histories_per_module
        self.master_rows = master_rows
        self.detail_rows = detail_rows
        self.history_rows = history_rows
        self.index_fraction = index_fraction
        self.null_fraction = null_fraction
        self.seed = seed

    def build(self, db: Database) -> AppsSchema:
        rng = random.Random(self.seed)
        tables: dict[str, TableInfo] = {}
        for module in self.modules:
            masters = []
            for m in range(self.masters_per_module):
                info = self._create_master(db, rng, module, m)
                tables[info.name] = info
                masters.append(info)
            details = []
            for d in range(self.details_per_module):
                info = self._create_detail(db, rng, module, d, masters)
                tables[info.name] = info
                details.append(info)
            for h in range(self.histories_per_module):
                info = self._create_history(db, rng, module, h, details)
                tables[info.name] = info
        schema = AppsSchema(self.modules, tables)
        self._populate(db, rng, schema)
        db.analyze()
        return schema

    # -- table shapes -----------------------------------------------------------

    def _create_master(self, db, rng, module: str, i: int) -> TableInfo:
        name = f"{module}_master{i}"
        rows = max(10, int(self.master_rows * rng.uniform(0.5, 2.0)))
        db.execute_ddl(
            f"""CREATE TABLE {name} (
                id INT PRIMARY KEY,
                category INT,
                region INT,
                status INT,
                amount INT)"""
        )
        return TableInfo(
            name, "master", rows, "id",
            ["category", "region", "status", "amount"],
            value_range=(1, max(rows // 4, 4)),
        )

    def _create_detail(self, db, rng, module: str, i: int, masters) -> TableInfo:
        name = f"{module}_detail{i}"
        rows = max(100, int(self.detail_rows * rng.uniform(0.4, 2.0)))
        parents = rng.sample(masters, k=min(2, len(masters)))
        fk_cols = []
        ddl_cols = [
            "id INT PRIMARY KEY",
            "quantity INT",
            "amount INT",
            "status INT",
            "created INT",
        ]
        edges = []
        for j, parent in enumerate(parents):
            column = f"m{j}_id"
            ddl_cols.append(f"{column} INT REFERENCES {parent.name}(id)")
            fk_cols.append(column)
            edges.append((column, parent.name, "id"))
        db.execute_ddl(f"CREATE TABLE {name} ({', '.join(ddl_cols)})")
        indexed = set()
        for column in fk_cols:
            if rng.random() < self.index_fraction:
                db.execute_ddl(
                    f"CREATE INDEX {name}_{column}_ix ON {name} ({column})"
                )
                indexed.add(column)
        return TableInfo(
            name, "detail", rows, "id",
            ["quantity", "amount", "status", "created"],
            edges, indexed, value_range=(1, 500),
        )

    def _create_history(self, db, rng, module: str, i: int, details) -> TableInfo:
        name = f"{module}_hist{i}"
        rows = max(500, int(self.history_rows * rng.uniform(0.5, 1.6)))
        parent = rng.choice(details)
        db.execute_ddl(
            f"""CREATE TABLE {name} (
                id INT PRIMARY KEY,
                detail_id INT REFERENCES {parent.name}(id),
                event INT,
                amount INT,
                logged INT)"""
        )
        indexed = set()
        if rng.random() < self.index_fraction:
            db.execute_ddl(f"CREATE INDEX {name}_det_ix ON {name} (detail_id)")
            indexed.add("detail_id")
        return TableInfo(
            name, "history", rows, "id",
            ["event", "amount", "logged"],
            [("detail_id", parent.name, "id")], indexed,
            value_range=(1, 200),
        )

    # -- population -------------------------------------------------------------

    def _populate(self, db: Database, rng: random.Random, schema: AppsSchema) -> None:
        # Masters first, then details, then histories (FK order).
        for kind in ("master", "detail", "history"):
            for info in schema.tables_of_kind(kind):
                db.insert(info.name, self._rows_for(rng, schema, info))

    def _rows_for(self, rng, schema: AppsSchema, info: TableInfo) -> list[dict]:
        lo, hi = info.value_range
        rows = []
        parent_counts = {
            parent: schema.tables[parent].row_count
            for _c, parent, _p in info.fk_edges
        }
        zipfs = {
            parent: datagen.zipf_int(count, 1.1)
            for parent, count in parent_counts.items()
        }
        for i in range(1, info.row_count + 1):
            row = {info.pk: i}
            for column in info.numeric_columns:
                if rng.random() < self.null_fraction:
                    row[column] = None
                else:
                    row[column] = rng.randint(lo, hi)
            for column, parent, _ppk in info.fk_edges:
                if rng.random() < self.null_fraction / 2:
                    row[column] = None
                elif rng.random() < 0.5:
                    row[column] = rng.randint(1, parent_counts[parent])
                else:  # skewed: duplicates make semijoin caching matter
                    row[column] = min(
                        zipfs[parent](rng, i), parent_counts[parent]
                    )
            rows.append(row)
        return rows


def apps_database(seed: int = 7, **builder_kwargs) -> tuple[Database, AppsSchema]:
    """Convenience: a Database with a generated applications schema."""
    db = Database()
    builder = AppsSchemaBuilder(seed=seed, **builder_kwargs)
    schema = builder.build(db)
    return db, schema
