"""Structural plan digests for the plan-stability CI gate.

"Query Optimization in the Wild" (PAPERS.md) makes the operational
point: optimizer *speedups* that silently change chosen plans are
regressions in disguise.  The subplan memo (:mod:`repro.optimizer.memo`)
must therefore land with proof that it changes no chosen plan.  This
module renders each chosen plan as a *structural digest* — the operator
``label()`` tree, which carries join order, access paths, and predicate
placement but no cost/cardinality floats — and the ``plan-digest`` CLI
verb compares the paper-query corpus's digests against a committed
golden file (``tests/golden/plan_digests.json``).  Any diff fails CI.

Digests are normalized for generated-name numbering: transformations
mint globally counted aliases (``vw$8``, ``gbp$2``, ``qb$17``), so the
same plan renders differently depending on how many optimizations ran
before it in the process.  :func:`normalize_generated_names` renumbers
every ``<prefix>$<n>`` token by order of first appearance, keeping
distinct views distinct while making the digest machine-independent.

The CI job runs the corpus twice — memo on and ``REPRO_MEMO=0`` — and
diffs both against the same golden file, proving memo-on, memo-off, and
the committed record all agree.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Optional

from ..optimizer.plans import Plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database, OptimizerConfig

#: transformation-minted alias tokens: vw$8, gbp$2, qb$17, setop$3, ...
_GENERATED_NAME = re.compile(r"\b([A-Za-z_][A-Za-z_0-9]*)\$(\d+)\b")


def normalize_generated_names(text: str) -> str:
    """Renumber every ``<prefix>$<n>`` token by order of first
    appearance, so digests are independent of the process-global alias
    counters while distinct generated names stay distinct."""
    seen: dict[str, str] = {}

    def replace(match: re.Match) -> str:
        token = match.group(0)
        if token not in seen:
            seen[token] = f"{match.group(1)}${len(seen) + 1}"
        return seen[token]

    return _GENERATED_NAME.sub(replace, text)


def structural_digest(plan: Plan) -> str:
    """The plan's structural signature: the indented ``label()`` tree
    (operators, join order, access paths, predicate placement — no
    costs), with generated names normalized."""
    lines: list[str] = []

    def render(node: Plan, depth: int) -> None:
        lines.append("  " * depth + node.label())
        for child in node.children():
            render(child, depth + 1)

    render(plan, 0)
    return normalize_generated_names("\n".join(lines))


def corpus_digests(
    db: "Database", queries: dict[str, str],
    config: Optional["OptimizerConfig"] = None,
) -> dict[str, str]:
    """Digest of the chosen plan for every query in *queries* (name ->
    digest), optimized in sorted name order for determinism."""
    return {
        name: structural_digest(db.optimize(queries[name], config).plan)
        for name in sorted(queries)
    }
