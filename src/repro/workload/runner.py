"""Workload runner: execute a query set under two optimizer configs and
collect the paper's measurements.

For every query we record, under each config:

* optimization effort — wall-clock seconds, the number of
  transformation states costed (the currency Table 2 reports), and the
  number of *fresh join-order enumerations* the physical optimizer ran
  (the deterministic optimizer-time currency: the subplan memo serves
  repeated join cores without enumerating, so this is the cost a state
  actually pays, where states-costed cannot see memo savings);
* execution effort — deterministic work units from the engine;
* the plan (to detect "execution plans changed", the paper's affected-set
  criterion in §4.1);
* result checksum — both configs must return identical multisets, which
  the runner verifies (a transformation bug would silently corrupt an
  experiment otherwise).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from ..database import Database, OptimizerConfig
from ..errors import ReproError
from .querygen import EXPENSIVE_FUNCTION, GeneratedQuery


@dataclass
class ConfigMeasurement:
    """One query under one optimizer config."""

    exec_work: float
    opt_states: int
    opt_enumerations: int
    opt_seconds: float
    exec_seconds: float
    plan_text: str
    rows: int

    @property
    def total_time(self) -> float:
        """The paper's "total run time": optimization + execution.  Both
        terms are in work units; optimizer states are charged at a fixed
        rate so that the optimization-time increase CBQT causes (§4.4)
        shows up in the totals."""
        return self.exec_work + OPT_STATE_COST * self.opt_states


#: work units charged per transformation state costed by the optimizer
OPT_STATE_COST = 40.0

#: work units charged per fresh join-order enumeration; the memo's
#: cross-state sharing shows up as a drop in this charge, never in
#: states-costed (which counts transformation decisions, not plan work)
OPT_ENUMERATION_COST = 40.0


@dataclass
class QueryOutcome:
    query: GeneratedQuery
    baseline: ConfigMeasurement
    treated: ConfigMeasurement

    @property
    def plan_changed(self) -> bool:
        return self.baseline.plan_text != self.treated.plan_text

    @property
    def improvement_ratio(self) -> float:
        """old/new ratio of total run time (1.0 = unchanged)."""
        new = max(self.treated.total_time, 1e-9)
        return self.baseline.total_time / new


@dataclass
class WorkloadResult:
    outcomes: list[QueryOutcome] = field(default_factory=list)
    errors: list[tuple[str, str]] = field(default_factory=list)

    def affected(self) -> list[QueryOutcome]:
        return [o for o in self.outcomes if o.plan_changed]

    def relevant_to(self, *transformations: str) -> list[QueryOutcome]:
        wanted = set(transformations)
        return [
            o for o in self.outcomes if o.query.relevant & wanted
        ]


def register_workload_functions(db: Database, cost: float = 300.0) -> None:
    """Register the expensive UDF the generated workload uses."""
    db.register_function(
        EXPENSIVE_FUNCTION,
        lambda x: None if x is None else (x * 2654435761) % 7 % 2,
        expensive_cost=cost,
    )


def run_workload(
    db: Database,
    queries: Sequence[GeneratedQuery],
    baseline_config: OptimizerConfig,
    treated_config: OptimizerConfig,
    verify: bool = True,
) -> WorkloadResult:
    """Run every query under both configs."""
    result = WorkloadResult()
    for query in queries:
        try:
            baseline = _measure(db, query, baseline_config)
            treated = _measure(db, query, treated_config)
        except ReproError as exc:
            result.errors.append((query.name, str(exc)))
            continue
        if verify and baseline.rows != treated.rows:
            result.errors.append(
                (query.name,
                 f"row-count mismatch: {baseline.rows} vs {treated.rows}")
            )
            continue
        result.outcomes.append(QueryOutcome(query, baseline, treated))
    return result


def _measure(
    db: Database, query: GeneratedQuery, config: OptimizerConfig
) -> ConfigMeasurement:
    outcome = db.execute(query.sql, config)
    return ConfigMeasurement(
        exec_work=outcome.exec_stats.work_units,
        opt_states=max(outcome.report.total_states, 1),
        opt_enumerations=outcome.report.join_enumerations,
        opt_seconds=outcome.optimize_seconds,
        exec_seconds=outcome.execute_seconds,
        plan_text=outcome.plan.describe(),
        rows=len(outcome.rows),
    )


def verify_result_equivalence(
    db: Database,
    queries: Sequence[GeneratedQuery],
    config_a: OptimizerConfig,
    config_b: OptimizerConfig,
) -> list[str]:
    """Full multiset comparison (slower than run_workload's row-count
    check); returns the names of mismatching queries."""
    mismatches = []
    for query in queries:
        rows_a = Counter(db.execute(query.sql, config_a).rows)
        rows_b = Counter(db.execute(query.sql, config_b).rows)
        if rows_a != rows_b:
            mismatches.append(query.name)
    return mismatches
