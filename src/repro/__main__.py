"""``python -m repro`` — launch the interactive SQL shell."""

from .cli import main

raise SystemExit(main())
