"""Reference evaluator: direct interpretation of query trees.

This is the semantics oracle for the whole project.  It evaluates a query
tree naively — nested-loop joins in from-list order, tuple-iteration
semantics for every subquery, no statistics, no plans — and is used by
the test suite to check that every transformation and every physical plan
preserves query results.

It deliberately mirrors the declarative reading of the query block:

* inner-join conjuncts are applied as soon as their aliases are bound;
* LEFT / SEMI / ANTI from-items implement outer join, semijoin and
  antijoin; ANTI_NA is the null-aware antijoin (a left row is rejected if
  any right row makes the condition TRUE *or* UNKNOWN);
* ROWNUM limits rows after WHERE, before GROUP BY and ORDER BY (Oracle
  semantics);
* INTERSECT / MINUS match NULLs and return duplicate-free results
  (§2.2.7 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import ExecutionError, UnsupportedError
from ..qtree.blocks import FromItem, QueryBlock, QueryNode, SetOpBlock
from ..qtree import exprutil
from ..sql import ast
from .expressions import (
    ExpressionCompiler,
    FunctionRegistry,
    Row,
    agg_key,
    is_true,
    sql_compare,
    sql_eq,
    window_key,
)
from .grouping import evaluate_group_by
from .tables import Storage
from .windows import compute_window


class ReferenceEvaluator:
    """Evaluates query trees directly against stored rows."""

    def __init__(
        self,
        storage: Storage,
        functions: Optional[FunctionRegistry] = None,
        binds: Optional[dict] = None,
    ):
        self._storage = storage
        self._functions = functions or FunctionRegistry()
        self._compiler = ExpressionCompiler(self._functions, _Runner(self), binds)

    # -- public API -----------------------------------------------------------

    def evaluate(self, node: QueryNode, outer_row: Optional[Row] = None) -> list[tuple]:
        """Evaluate *node*, returning result rows as tuples in output
        order."""
        outer = outer_row or {}
        if isinstance(node, SetOpBlock):
            return self._evaluate_setop(node, outer)
        if isinstance(node, QueryBlock):
            return [t for t, _row in self._evaluate_block(node, outer)]
        raise UnsupportedError(f"cannot evaluate {type(node).__name__}")

    # -- set operations ---------------------------------------------------------

    def _evaluate_setop(self, node: SetOpBlock, outer: Row) -> list[tuple]:
        branch_results = [self.evaluate(branch, outer) for branch in node.branches]
        if node.op == "UNION ALL":
            result: list[tuple] = []
            for rows in branch_results:
                result.extend(rows)
        elif node.op == "UNION":
            seen: set[tuple] = set()
            result = []
            for rows in branch_results:
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        result.append(row)
        elif node.op == "INTERSECT":
            left, right = branch_results
            right_set = set(right)
            seen = set()
            result = []
            for row in left:
                if row in right_set and row not in seen:
                    seen.add(row)
                    result.append(row)
        elif node.op == "MINUS":
            left, right = branch_results
            right_set = set(right)
            seen = set()
            result = []
            for row in left:
                if row not in right_set and row not in seen:
                    seen.add(row)
                    result.append(row)
        else:  # pragma: no cover - constructor validates
            raise UnsupportedError(node.op)
        if node.order_by:
            columns = node.output_columns()
            positions = {name: i for i, name in enumerate(columns)}

            for item in reversed(node.order_by):
                if not isinstance(item.expr, ast.ColumnRef):
                    raise UnsupportedError(
                        "set-operation ORDER BY must name output columns"
                    )
                pos = positions.get(item.expr.name)
                if pos is None:
                    raise ExecutionError(
                        f"unknown ORDER BY column {item.expr.name!r}"
                    )
                result.sort(key=lambda t: _sort_key(t[pos], item.descending),
                            reverse=item.descending)
        return result

    # -- query blocks ------------------------------------------------------------

    def _evaluate_block(
        self, block: QueryBlock, outer: Row
    ) -> list[tuple[tuple, Row]]:
        rows = self._join_rows(block, outer)
        if block.rownum_limit is not None:
            rows = rows[: block.rownum_limit]

        needs_grouping = bool(block.group_by) or block.has_aggregates
        if needs_grouping:
            rows = self._group_rows(block, rows)
            for conjunct in block.having_conjuncts:
                predicate = self._compiler.compile(conjunct)
                rows = [r for r in rows if is_true(predicate(r))]

        rows = self._compute_windows(block, rows)

        projections = [self._compiler.compile(i.expr) for i in block.select_items]
        projected = [(tuple(p(row) for p in projections), row) for row in rows]

        if block.distinct:
            seen: set[tuple] = set()
            deduped = []
            for pair in projected:
                if pair[0] not in seen:
                    seen.add(pair[0])
                    deduped.append(pair)
            projected = deduped

        if block.order_by:
            order_fns = [self._compiler.compile(o.expr) for o in block.order_by]
            for fn, item in reversed(list(zip(order_fns, block.order_by))):
                projected.sort(
                    key=lambda pair, fn=fn, d=item.descending: _sort_key(
                        fn(pair[1]), d
                    ),
                    reverse=item.descending,
                )
        return projected

    # -- join evaluation -----------------------------------------------------------

    def _join_rows(self, block: QueryBlock, outer: Row) -> list[Row]:
        local_aliases = block.aliases()
        pending = [
            (conjunct, exprutil.aliases_referenced(conjunct) & local_aliases)
            for conjunct in block.where_conjuncts
        ]
        applied: set[int] = set()
        current: list[Row] = [dict(outer)]
        bound: set[str] = set()

        for item in block.from_items:
            # Equality conjuncts between the bound prefix and this item
            # drive a hash lookup instead of a cross product — purely a
            # speed-up: `=` never matches NULL either way, and the
            # remaining conjuncts are still applied below.
            equi = None
            if item.join_type == "INNER":
                equi = self._applicable_equi(
                    pending, applied, bound, item.alias
                )
            current = self._expand_item(item, current, outer, equi)
            if equi is not None:
                applied.add(equi[0])
            bound.add(item.alias)
            for i, (conjunct, refs) in enumerate(pending):
                if i in applied or not refs <= bound:
                    continue
                predicate = self._compiler.compile(conjunct)
                current = [row for row in current if is_true(predicate(row))]
                applied.add(i)
        # Any conjunct with no local refs (e.g. pure outer-correlation or
        # constant) is applied at the end.
        for i, (conjunct, _refs) in enumerate(pending):
            if i in applied:
                continue
            predicate = self._compiler.compile(conjunct)
            current = [row for row in current if is_true(predicate(row))]
        return current

    def _applicable_equi(self, pending, applied, bound, alias):
        """Find one pending plain-equality conjunct joining *alias* to the
        bound prefix; returns (index, prefix_expr_fn, item_expr_fn)."""
        for i, (conjunct, refs) in enumerate(pending):
            if i in applied:
                continue
            if not isinstance(conjunct, ast.BinOp) or conjunct.op != "=":
                continue
            if ast.contains_subquery(conjunct):
                continue
            left_refs = exprutil.aliases_referenced(conjunct.left)
            right_refs = exprutil.aliases_referenced(conjunct.right)
            if left_refs and left_refs <= bound and right_refs == {alias}:
                return (i, self._compiler.compile(conjunct.left),
                        self._compiler.compile(conjunct.right))
            if right_refs and right_refs <= bound and left_refs == {alias}:
                return (i, self._compiler.compile(conjunct.right),
                        self._compiler.compile(conjunct.left))
        return None

    def _expand_item(
        self, item: FromItem, current: list[Row], outer: Row, equi=None
    ) -> list[Row]:
        if item.join_type == "INNER":
            result = []
            # A derived item correlated to anything beyond the outer
            # binding must be re-evaluated per row: no hash fast path.
            laterally_correlated = item.is_derived and any(
                ref.qualifier for ref in item.subquery.correlation_refs()
            )
            if equi is not None and not laterally_correlated:
                _idx, prefix_fn, item_fn = equi
                buckets: dict[object, list[Row]] = {}
                for addition in self._item_rows(item, outer):
                    key = item_fn(addition)
                    if key is None:
                        continue
                    buckets.setdefault(key, []).append(addition)
                for row in current:
                    key = prefix_fn(row)
                    if key is None:
                        continue
                    for addition in buckets.get(key, ()):
                        merged = dict(row)
                        merged.update(addition)
                        result.append(merged)
                return result
            for row in current:
                for addition in self._item_rows(item, row):
                    merged = dict(row)
                    merged.update(addition)
                    result.append(merged)
            return result

        condition = ast.make_conjunction([c.clone() for c in item.join_conjuncts])
        cond_fn = (
            self._compiler.compile(condition) if condition is not None else None
        )
        result = []
        for row in current:
            additions = list(self._item_rows(item, row))
            if item.join_type == "LEFT":
                matched = False
                for addition in additions:
                    merged = dict(row)
                    merged.update(addition)
                    if cond_fn is None or is_true(cond_fn(merged)):
                        matched = True
                        result.append(merged)
                if not matched:
                    null_row = dict(row)
                    for column in item.output_columns():
                        null_row[f"{item.alias}.{column}"] = None
                    result.append(null_row)
            elif item.join_type == "SEMI":
                for addition in additions:
                    merged = dict(row)
                    merged.update(addition)
                    if cond_fn is None or is_true(cond_fn(merged)):
                        result.append(row)
                        break
            elif item.join_type == "ANTI":
                if not any(
                    cond_fn is None or is_true(cond_fn({**row, **addition}))
                    for addition in additions
                ):
                    result.append(row)
            elif item.join_type == "ANTI_NA":
                rejected = False
                for addition in additions:
                    merged = dict(row)
                    merged.update(addition)
                    value = cond_fn(merged) if cond_fn is not None else True
                    if value is True or value is None:
                        rejected = True
                        break
                if not rejected:
                    result.append(row)
        return result

    def _item_rows(self, item: FromItem, binding: Row) -> Iterable[Row]:
        """Rows produced by one from-item, re-keyed with its alias.
        *binding* supplies outer/lateral correlation values."""
        if item.is_base_table:
            data = self._storage.get(item.table_name)
            prefix = item.alias
            for row_id, stored in enumerate(data.rows):
                row = {f"{prefix}.{name}": value for name, value in stored.items()}
                row[f"{prefix}.rowid"] = row_id
                yield row
        else:
            columns = item.output_columns()
            for values in self.evaluate(item.subquery, binding):
                yield {
                    f"{item.alias}.{name}": value
                    for name, value in zip(columns, values)
                }

    # -- grouping ----------------------------------------------------------------

    def _group_rows(self, block: QueryBlock, rows: list[Row]) -> list[Row]:
        aggregates = self._collect_aggregates(block)
        key_fns = [self._compiler.compile(g) for g in block.group_by]
        return evaluate_group_by(
            rows, block.group_by, key_fns, block.grouping_sets, aggregates
        )

    def _collect_aggregates(self, block: QueryBlock):
        calls: list[ast.FuncCall] = []
        seen: set[str] = set()

        def collect(expr: ast.Expr) -> None:
            if isinstance(expr, ast.WindowFunc):
                return
            if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
                key = agg_key(expr)
                if key not in seen:
                    seen.add(key)
                    calls.append(expr)
                return
            for child in expr.children():
                collect(child)

        for item in block.select_items:
            collect(item.expr)
        for conjunct in block.having_conjuncts:
            collect(conjunct)
        for item in block.order_by:
            collect(item.expr)

        compiled = []
        for call in calls:
            is_star = bool(call.args) and isinstance(call.args[0], ast.Star)
            arg_fn = None if is_star else self._compiler.compile(call.args[0])
            compiled.append((call, arg_fn, is_star))
        return compiled

    # -- window functions -----------------------------------------------------------

    def _compute_windows(self, block: QueryBlock, rows: list[Row]) -> list[Row]:
        windows: list[ast.WindowFunc] = []
        seen: set[str] = set()
        for item in block.select_items:
            for node in item.expr.walk():
                if isinstance(node, ast.WindowFunc):
                    key = window_key(node)
                    if key not in seen:
                        seen.add(key)
                        windows.append(node)
        if not windows:
            return rows
        rows = [dict(row) for row in rows]
        for window in windows:
            compute_window(window, rows, self._compiler, _sort_key)
        return rows


class _Runner:
    """SubqueryRunner implementation backed by the reference evaluator.

    Results are memoised on the subquery's correlation values — a pure
    speed-up (evaluation is deterministic), mirroring the TIS caching of
    the real engine."""

    def __init__(self, evaluator: ReferenceEvaluator):
        self._evaluator = evaluator
        self._cache: dict[tuple, list[tuple]] = {}
        self._corr_keys: dict[int, tuple[str, ...]] = {}

    def _rows(self, sub: ast.SubqueryExpr, outer_row: Row) -> list[tuple]:
        keys = self._corr_keys.get(id(sub))
        if keys is None:
            keys = tuple(sorted({
                f"{ref.qualifier}.{ref.name}"
                for ref in sub.query.correlation_refs()
            }))
            self._corr_keys[id(sub)] = keys
        cache_key = (id(sub.query),) + tuple(outer_row.get(k) for k in keys)
        cached = self._cache.get(cache_key)
        if cached is None:
            cached = self._evaluator.evaluate(sub.query, outer_row)
            self._cache[cache_key] = cached
        return cached

    def scalar(self, sub: ast.SubqueryExpr, outer_row: Row) -> object:
        rows = self._rows(sub, outer_row)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("single-row subquery returned more than one row")
        return rows[0][0]

    def exists(self, sub: ast.SubqueryExpr, outer_row: Row) -> bool:
        return bool(self._rows(sub, outer_row))

    def in_probe(self, sub: ast.SubqueryExpr, left_values: tuple,
                 outer_row: Row) -> object:
        rows = self._rows(sub, outer_row)
        saw_null = False
        for row in rows:
            verdict = _row_equal(left_values, row)
            if verdict is True:
                return True
            if verdict is None:
                saw_null = True
        return None if saw_null else False

    def quantified(self, sub: ast.SubqueryExpr, left_value: object,
                   outer_row: Row) -> object:
        rows = self._rows(sub, outer_row)
        results = [sql_compare(sub.op, left_value, row[0]) for row in rows]
        if sub.quantifier == "ANY":
            if any(r is True for r in results):
                return True
            if any(r is None for r in results):
                return None
            return False
        # ALL
        if any(r is False for r in results):
            return False
        if any(r is None for r in results):
            return None
        return True


def _row_equal(left: tuple, right: tuple) -> object:
    saw_null = False
    for a, b in zip(left, right):
        verdict = sql_eq(a, b)
        if verdict is False:
            return False
        if verdict is None:
            saw_null = True
    return None if saw_null else True


class _NullKey:
    """Sentinel making NULL group keys hashable and equal to each other."""

    _instance: Optional["_NullKey"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"


def _group_key(value: object) -> object:
    return _NullKey() if value is None else value


class _SortKey:
    """Total order over possibly-NULL values: Oracle places NULLs last in
    ascending order and first in descending order."""

    __slots__ = ("value", "null_rank")

    def __init__(self, value: object, descending: bool):
        self.value = value
        # In both directions, after `reverse` is applied, NULLs must land
        # at Oracle's position: rank NULLs above everything when the sort
        # is ascending (last) and above everything when descending too
        # (reverse puts them first).
        self.null_rank = 1 if value is None else 0

    def __lt__(self, other: "_SortKey") -> bool:
        if self.null_rank != other.null_rank:
            return self.null_rank < other.null_rank
        if self.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _SortKey)
            and self.null_rank == other.null_rank
            and self.value == other.value
        )


def _sort_key(value: object, descending: bool) -> _SortKey:
    return _SortKey(value, descending)
