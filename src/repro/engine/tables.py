"""In-memory row storage with index maintenance.

Rows are stored as plain dicts keyed by bare column name; scan operators
re-key them with the from-item alias (``"alias.column"``) when producing
execution rows.  Each catalog index gets a hash map for equality probes
and a sorted key list for range scans, mimicking a B-tree's two access
patterns.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Optional, Sequence

from ..catalog.schema import Index, TableDef
from ..errors import ExecutionError


class IndexData:
    """Runtime structure backing one catalog index."""

    def __init__(self, index: Index):
        self.index = index
        self._hash: dict[tuple, list[int]] = {}
        self._sorted_keys: list[tuple] = []
        self._sorted_dirty = False

    def insert(self, key: tuple, row_id: int) -> None:
        if any(part is None for part in key):
            return  # NULL keys are not indexed, as in Oracle B-trees.
        bucket = self._hash.get(key)
        if bucket is None:
            self._hash[key] = [row_id]
            self._sorted_dirty = True
        elif self.index.unique:
            raise ExecutionError(
                f"unique index {self.index.name!r} violated for key {key!r}"
            )
        else:
            bucket.append(row_id)

    def _ensure_sorted(self) -> None:
        if self._sorted_dirty:
            self._sorted_keys = sorted(self._hash)
            self._sorted_dirty = False

    def lookup_eq(self, key: tuple) -> list[int]:
        return self._hash.get(key, [])

    def lookup_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Range scan on the leading column only (single-column bounds)."""
        self._ensure_sorted()
        keys = self._sorted_keys
        if low is not None:
            probe = (low,)
            start = (
                bisect.bisect_left(keys, probe)
                if low_inclusive
                else bisect.bisect_right(keys, probe + (_INFINITY,))
            )
        else:
            start = 0
        for key in keys[start:]:
            if high is not None:
                first = key[0]
                if high_inclusive and first > high:
                    break
                if not high_inclusive and first >= high:
                    break
            if low is not None and low_inclusive is False and key[0] == low:
                continue
            yield from self._hash[key]

    def scan(
        self,
        prefix: tuple,
        range_op: Optional[str] = None,
        range_value: Optional[object] = None,
    ) -> Iterator[int]:
        """Probe on an equality *prefix* of the index columns, optionally
        bounded by ``range_op``/``range_value`` on the next column.

        This is the composite-index access the optimizer's IndexScan plans
        rely on: ``prefix`` may be shorter than the full key.
        """
        if range_op is None and len(prefix) == len(self.index.columns):
            yield from self._hash.get(prefix, [])
            return
        if any(part is None for part in prefix) or (
            range_op is not None and range_value is None
        ):
            return
        self._ensure_sorted()
        keys = self._sorted_keys
        start = bisect.bisect_left(keys, prefix)
        depth = len(prefix)
        for key in keys[start:]:
            if key[:depth] != prefix:
                break
            if range_op is not None:
                value = key[depth]
                if range_op == "=" and value != range_value:
                    continue
                if range_op == "<" and not value < range_value:
                    continue
                if range_op == "<=" and not value <= range_value:
                    continue
                if range_op == ">" and not value > range_value:
                    continue
                if range_op == ">=" and not value >= range_value:
                    continue
            yield from self._hash[key]

    def __len__(self) -> int:
        return len(self._hash)


class _Infinity:
    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True


_INFINITY = _Infinity()


class TableData:
    """Rows plus live index structures for one table."""

    def __init__(self, table: TableDef):
        self.table = table
        self.rows: list[dict] = []
        self.indexes: dict[str, IndexData] = {
            ix.name: IndexData(ix) for ix in table.indexes
        }

    def attach_index(self, index: Index) -> None:
        data = IndexData(index)
        for row_id, row in enumerate(self.rows):
            data.insert(tuple(row[c] for c in index.columns), row_id)
        self.indexes[index.name] = data

    def insert(self, rows: Iterable[dict]) -> int:
        count = 0
        for row in rows:
            normalised = self._normalise(row)
            row_id = len(self.rows)
            self.rows.append(normalised)
            for data in self.indexes.values():
                key = tuple(normalised[c] for c in data.index.columns)
                data.insert(key, row_id)
            count += 1
        return count

    def _normalise(self, row: dict) -> dict:
        normalised = {}
        for name, column in self.table.columns.items():
            value = row.get(name)
            if value is None and column.not_null:
                raise ExecutionError(
                    f"NULL in NOT NULL column {self.table.name}.{name}"
                )
            normalised[name] = value
        extra = set(row) - set(self.table.columns)
        if extra:
            raise ExecutionError(
                f"unknown columns {sorted(extra)} for table {self.table.name!r}"
            )
        return normalised

    def index_named(self, name: str) -> IndexData:
        try:
            return self.indexes[name]
        except KeyError:
            raise ExecutionError(
                f"no index {name!r} on table {self.table.name!r}"
            ) from None

    @property
    def row_count(self) -> int:
        return len(self.rows)


class Storage:
    """All table data for one database instance."""

    def __init__(self) -> None:
        self._tables: dict[str, TableData] = {}

    def create(self, table: TableDef) -> TableData:
        data = TableData(table)
        self._tables[table.name] = data
        return data

    def get(self, name: str) -> TableData:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ExecutionError(f"no data for table {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Sequence[TableData]:
        return list(self._tables.values())
