"""In-memory row storage with index maintenance and copy-on-write
versioning.

Rows are stored as plain dicts keyed by bare column name; scan operators
re-key them with the from-item alias (``"alias.column"``) when producing
execution rows.  Each catalog index gets a hash map for equality probes
and a sorted key list for range scans, mimicking a B-tree's two access
patterns.

Concurrency model (the server front end made cross-thread access the
norm): every table's rows + index structures live in an immutable
:class:`TableVersion`.  Writers (``insert``, ``attach_index``) build a
*new* version under the table's write lock — sharing unchanged index
buckets structurally — and publish it with one atomic reference swap, so

* a batch insert is all-or-nothing: readers see the table before the
  batch or after it, never a torn middle (and a mid-batch constraint
  violation leaves the table untouched);
* a reader that pins a :class:`TableSnapshot` (or a whole
  :class:`StorageSnapshot`) keeps one consistent version for as long as
  it holds the handle, regardless of concurrent DDL/DML — the snapshot
  semantics the query-serving front end (:mod:`repro.server`) relies on.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from ..catalog.schema import Index, TableDef
from ..errors import ExecutionError

#: commit hook signature: called with the fully validated new state and a
#: zero-argument *publish* closure; the hook decides when (or whether) the
#: new version becomes visible — the durability layer uses this to log a
#: WAL record *before* the atomic reference swap
CommitHook = Callable[[Callable[[], None]], None]


class IndexData:
    """Runtime structure backing one catalog index.

    Instances are owned by exactly one :class:`TableVersion` and never
    mutated after the version is published; ``copy()`` produces the next
    version's structure, sharing unmodified row-id buckets.
    """

    def __init__(self, index: Index):
        self.index = index
        self._hash: dict[tuple, list[int]] = {}
        self._sorted_keys: list[tuple] = []
        self._sorted_dirty = False
        #: keys whose buckets are shared with the version this structure
        #: was copied from; such a bucket is replaced (not appended to)
        #: on first touch so published versions stay immutable
        self._inherited: set[tuple] = set()

    def copy(self) -> "IndexData":
        """A shallow structural copy for the next copy-on-write version:
        the key map is new, the row-id buckets are shared until touched."""
        clone = IndexData(self.index)
        clone._hash = dict(self._hash)
        clone._sorted_keys = self._sorted_keys
        clone._sorted_dirty = self._sorted_dirty
        clone._inherited = set(self._hash)
        return clone

    def insert(self, key: tuple, row_id: int) -> None:
        if any(part is None for part in key):
            return  # NULL keys are not indexed, as in Oracle B-trees.
        bucket = self._hash.get(key)
        if bucket is None:
            self._hash[key] = [row_id]
            self._sorted_dirty = True
        elif self.index.unique:
            raise ExecutionError(
                f"unique index {self.index.name!r} violated for key {key!r}"
            )
        elif key in self._inherited:
            self._hash[key] = bucket + [row_id]
            self._inherited.discard(key)
        else:
            bucket.append(row_id)

    def _ensure_sorted(self) -> None:
        if self._sorted_dirty:
            self._sorted_keys = sorted(self._hash)
            self._sorted_dirty = False

    def lookup_eq(self, key: tuple) -> list[int]:
        return self._hash.get(key, [])

    def lookup_range(
        self,
        low: Optional[object],
        high: Optional[object],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Range scan on the leading column only (single-column bounds)."""
        self._ensure_sorted()
        keys = self._sorted_keys
        if low is not None:
            probe = (low,)
            start = (
                bisect.bisect_left(keys, probe)
                if low_inclusive
                else bisect.bisect_right(keys, probe + (_INFINITY,))
            )
        else:
            start = 0
        for key in keys[start:]:
            if high is not None:
                first = key[0]
                if high_inclusive and first > high:
                    break
                if not high_inclusive and first >= high:
                    break
            if low is not None and low_inclusive is False and key[0] == low:
                continue
            yield from self._hash[key]

    def scan(
        self,
        prefix: tuple,
        range_op: Optional[str] = None,
        range_value: Optional[object] = None,
    ) -> Iterator[int]:
        """Probe on an equality *prefix* of the index columns, optionally
        bounded by ``range_op``/``range_value`` on the next column.

        This is the composite-index access the optimizer's IndexScan plans
        rely on: ``prefix`` may be shorter than the full key.
        """
        if range_op is None and len(prefix) == len(self.index.columns):
            yield from self._hash.get(prefix, [])
            return
        if any(part is None for part in prefix) or (
            range_op is not None and range_value is None
        ):
            return
        self._ensure_sorted()
        keys = self._sorted_keys
        start = bisect.bisect_left(keys, prefix)
        depth = len(prefix)
        for key in keys[start:]:
            if key[:depth] != prefix:
                break
            if range_op is not None:
                value = key[depth]
                if range_op == "=" and value != range_value:
                    continue
                if range_op == "<" and not value < range_value:
                    continue
                if range_op == "<=" and not value <= range_value:
                    continue
                if range_op == ">" and not value > range_value:
                    continue
                if range_op == ">=" and not value >= range_value:
                    continue
            yield from self._hash[key]

    def __len__(self) -> int:
        return len(self._hash)


class _Infinity:
    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True


_INFINITY = _Infinity()


class TableVersion:
    """One immutable committed state of a table: rows + index structures.

    Published versions are never mutated; the columnar cache is built
    lazily but idempotently (a benign race at worst builds it twice)."""

    __slots__ = ("rows", "indexes", "version", "_columnar")

    def __init__(
        self,
        rows: list[dict],
        indexes: dict[str, IndexData],
        version: int,
    ):
        self.rows = rows
        self.indexes = indexes
        self.version = version
        self._columnar: Optional[dict[str, list]] = None

    def columnar(self, table: TableDef) -> dict[str, list]:
        """Column-major view (bare column names + ``rowid``) of this
        version, cached on the version — snapshots of the same committed
        state share one build."""
        cached = self._columnar
        if cached is None:
            rows = self.rows
            cached = {
                name: [row[name] for row in rows] for name in table.columns
            }
            cached["rowid"] = list(range(len(rows)))
            self._columnar = cached
        return cached


class TableSnapshot:
    """A pinned, read-only view of one table at one committed version.

    Exposes the same read surface as :class:`TableData` (``rows``,
    ``indexes``, ``index_named``, ``row_count``, ``columnar``) so
    executors run against either interchangeably."""

    __slots__ = ("table", "_version")

    def __init__(self, table: TableDef, version: TableVersion):
        self.table = table
        self._version = version

    @property
    def rows(self) -> list[dict]:
        return self._version.rows

    @property
    def indexes(self) -> dict[str, IndexData]:
        return self._version.indexes

    @property
    def version(self) -> int:
        return self._version.version

    @property
    def row_count(self) -> int:
        return len(self._version.rows)

    def index_named(self, name: str) -> IndexData:
        try:
            return self._version.indexes[name]
        except KeyError:
            raise ExecutionError(
                f"no index {name!r} on table {self.table.name!r}"
            ) from None

    def columnar(self) -> dict[str, list]:
        return self._version.columnar(self.table)


class TableData:
    """The mutable handle on one table: a reference to the current
    :class:`TableVersion` plus the write lock that serializes writers."""

    def __init__(self, table: TableDef):
        self.table = table
        self._lock = threading.Lock()
        self._current = TableVersion(
            [], {ix.name: IndexData(ix) for ix in table.indexes}, 0
        )

    # -- read surface (delegates to the current version) -------------------

    @property
    def rows(self) -> list[dict]:
        return self._current.rows  # staticcheck: ignore[lock.discipline] atomic read of the copy-on-write version reference

    @property
    def indexes(self) -> dict[str, IndexData]:
        return self._current.indexes  # staticcheck: ignore[lock.discipline] atomic read of the copy-on-write version reference

    @property
    def version(self) -> int:
        """Data version, bumped by every committed write."""
        return self._current.version  # staticcheck: ignore[lock.discipline] atomic read of the copy-on-write version reference

    @property
    def row_count(self) -> int:
        return len(self._current.rows)  # staticcheck: ignore[lock.discipline] atomic read of the copy-on-write version reference

    def index_named(self, name: str) -> IndexData:
        try:
            return self._current.indexes[name]  # staticcheck: ignore[lock.discipline] atomic read of the copy-on-write version reference
        except KeyError:
            raise ExecutionError(
                f"no index {name!r} on table {self.table.name!r}"
            ) from None

    def columnar(self) -> dict[str, list]:
        """Columnar view of the current version (see
        :meth:`TableVersion.columnar`)."""
        return self._current.columnar(self.table)  # staticcheck: ignore[lock.discipline] atomic read of the copy-on-write version reference

    def snapshot(self) -> TableSnapshot:
        """Pin the current committed version (one atomic read)."""
        return TableSnapshot(self.table, self._current)  # staticcheck: ignore[lock.discipline] atomic read of the copy-on-write version reference

    # -- writes (copy-on-write, all-or-nothing) -----------------------------

    def attach_index(
        self, index: Index, on_commit: Optional[CommitHook] = None
    ) -> None:
        with self._lock:
            current = self._current
            data = IndexData(index)
            for row_id, row in enumerate(current.rows):
                data.insert(tuple(row[c] for c in index.columns), row_id)
            indexes = dict(current.indexes)
            indexes[index.name] = data
            version = TableVersion(current.rows, indexes, current.version + 1)

            def publish() -> None:
                self._current = version  # staticcheck: ignore[lock.discipline] closure runs under self._lock (held by the enclosing with)

            if on_commit is None:
                publish()
            else:
                on_commit(publish)

    def insert(
        self,
        rows: Iterable[dict],
        on_commit: Optional[Callable[[list[dict], Callable[[], None]], None]] = None,
    ) -> int:
        """Insert dict rows (missing columns become NULL).

        The batch commits atomically: concurrent readers see the table
        before all of the rows or after all of them, and any constraint
        violation mid-batch leaves the table unchanged.

        When *on_commit* is given it is called — still under the table's
        write lock, after every row has been validated and indexed — with
        the normalised batch and a *publish* closure; the new version only
        becomes visible when the hook invokes the closure.  The durability
        layer uses this to make the write-ahead-log append and the version
        swap one atomic commit."""
        with self._lock:
            current = self._current
            new_rows = list(current.rows)
            new_indexes = {
                name: data.copy() for name, data in current.indexes.items()
            }
            batch = []
            for row in rows:
                normalised = self._normalise(row)
                row_id = len(new_rows)
                new_rows.append(normalised)
                for data in new_indexes.values():
                    key = tuple(normalised[c] for c in data.index.columns)
                    data.insert(key, row_id)
                batch.append(normalised)
            version = TableVersion(new_rows, new_indexes, current.version + 1)

            def publish() -> None:
                self._current = version  # staticcheck: ignore[lock.discipline] closure runs under self._lock (held by the enclosing with)

            if on_commit is None:
                publish()
            else:
                on_commit(batch, publish)
            return len(batch)

    def _normalise(self, row: dict) -> dict:
        normalised = {}
        for name, column in self.table.columns.items():
            value = row.get(name)
            if value is None and column.not_null:
                raise ExecutionError(
                    f"NULL in NOT NULL column {self.table.name}.{name}"
                )
            normalised[name] = value
        extra = set(row) - set(self.table.columns)
        if extra:
            raise ExecutionError(
                f"unknown columns {sorted(extra)} for table {self.table.name!r}"
            )
        return normalised


#: what plan operators actually require of "a table" — either the live
#: handle or a pinned snapshot
TableLike = Union[TableData, TableSnapshot]


class StorageSnapshot:
    """A pinned view of every table at one instant: the read half of the
    :class:`Storage` interface (``get`` / ``has`` / ``tables``) backed by
    per-table :class:`TableSnapshot` handles.

    Executors constructed over a snapshot see a stable world: concurrent
    inserts, index builds, and new tables do not appear, and each pinned
    table is internally consistent (rows and indexes from one committed
    version)."""

    def __init__(self, tables: dict[str, TableSnapshot]):
        self._tables = tables

    def get(self, name: str) -> TableSnapshot:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ExecutionError(f"no data for table {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Sequence[TableSnapshot]:
        return list(self._tables.values())

    def versions(self) -> dict[str, int]:
        """Pinned data version per table name."""
        return {name: snap.version for name, snap in self._tables.items()}


class Storage:
    """All table data for one database instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables: dict[str, TableData] = {}

    def create(self, table: TableDef) -> TableData:
        data = TableData(table)
        with self._lock:
            self._tables[table.name] = data
        return data

    def drop(self, name: str) -> None:
        """Remove a table's data (DDL-rollback / recovery path only)."""
        with self._lock:
            self._tables.pop(name.lower(), None)

    def get(self, name: str) -> TableData:
        try:
            return self._tables[name.lower()]  # staticcheck: ignore[lock.discipline] tables are registered once at DDL time; dict read is atomic
        except KeyError:
            raise ExecutionError(f"no data for table {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables  # staticcheck: ignore[lock.discipline] tables are registered once at DDL time; dict read is atomic

    def tables(self) -> Sequence[TableData]:
        with self._lock:
            return list(self._tables.values())

    def snapshot(
        self, names: Optional[Iterable[str]] = None
    ) -> StorageSnapshot:
        """Pin the current version of every table (or just *names*).

        Each table is pinned with one atomic read of its published
        version; a concurrent batch insert is therefore visible either
        fully or not at all, never partially."""
        with self._lock:
            if names is None:
                selected = dict(self._tables)
            else:
                selected = {
                    key: self._tables[key]
                    for key in (name.lower() for name in names)
                    if key in self._tables
                }
        return StorageSnapshot(
            {name: data.snapshot() for name, data in selected.items()}
        )
