"""Plan executor: interprets physical plans with work-unit accounting.

The executor is generator-based so that COUNT STOPKEY (ROWNUM) limits
stop upstream work, exactly as the optimizer's stop-key cost model
assumes.  Every operator charges work units using the same
:class:`~repro.optimizer.costmodel.CostModel` constants the optimizer
estimated with, so "estimated cost" and "measured work" share a currency
and benchmark improvements are deterministic.

Subquery predicates that survived unnesting execute here under tuple
iteration semantics through :class:`TisSubqueryRunner`: per outer row,
the subquery's plan runs with the outer row as a binding, and results are
cached keyed on the correlation values — the caching behaviour §2.1.1 and
§2.2.1 of the paper describe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..catalog.schema import Catalog
from ..errors import ExecutionError, UnsupportedError
from ..optimizer.costmodel import DEFAULT_COST_MODEL, CostModel
from ..optimizer.plans import (
    Distinct,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Plan,
    Project,
    SetOp,
    Sort,
    TableScan,
    ViewScan,
    WindowCompute,
)
from ..qtree.blocks import QueryNode
from ..resilience import CancelToken, faults
from ..sql import ast
from .expressions import (
    ExpressionCompiler,
    FunctionRegistry,
    Row,
    is_true,
    sql_compare,
)
from .grouping import evaluate_group_by
from .reference import _row_equal, _sort_key
from .tables import Storage
from .windows import compute_window


@dataclass
class ExecStats:
    """Execution accounting for one query."""

    work_units: float = 0.0
    rows_out: int = 0
    subquery_invocations: int = 0
    subquery_cache_hits: int = 0
    #: which engine produced this run: "row", "vector", or "parallel"
    executor_mode: str = "row"
    operator_rows: dict[str, int] = field(default_factory=dict)
    #: actual rows emitted per plan node (keyed by id(plan)); consumed by
    #: Plan.describe(actual_rows=...) for EXPLAIN ANALYZE output
    node_rows: dict[int, int] = field(default_factory=dict)
    #: filled only under ``analyze=True``: times each node's generator
    #: was instantiated (a parameterised NLJ inner re-runs per outer row)
    node_invocations: dict[int, int] = field(default_factory=dict)
    #: filled only under ``analyze=True``: inclusive wall-clock seconds
    #: spent producing each node's rows (children included; EXPLAIN
    #: ANALYZE subtracts direct children to report self-time)
    node_seconds: dict[int, float] = field(default_factory=dict)

    def charge(self, units: float) -> None:
        self.work_units += units


class Executor:
    """Executes plans against storage.

    ``plan_subquery`` is a callable ``QueryNode -> Plan`` used for
    subqueries still embedded in predicates (TIS); the Database facade
    wires it to the physical optimizer with annotation reuse.
    """

    def __init__(
        self,
        storage: Storage,
        catalog: Catalog,
        functions: Optional[FunctionRegistry] = None,
        plan_subquery: Optional[Callable[[QueryNode], Plan]] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        self._storage = storage
        self._catalog = catalog
        self._functions = functions or FunctionRegistry()
        self._plan_subquery = plan_subquery
        self._cm = cost_model

    def execute(
        self,
        plan: Plan,
        binding: Optional[Row] = None,
        binds: Optional[dict] = None,
        token: Optional[CancelToken] = None,
        analyze: bool = False,
    ) -> tuple[list[tuple], ExecStats]:
        """Run *plan* to completion; returns output tuples and stats.

        *binds* maps bind-variable keys (lowercase, as on
        :class:`~repro.sql.ast.BindParam`) to their values for this run.
        *token* arms cooperative cancellation: row loops poll it and the
        run aborts with StatementTimeout/StatementCancelled when it trips.
        *analyze* wraps every node's row generator in a profiler counting
        invocations and wall-clock inclusive time (EXPLAIN ANALYZE); off,
        the dispatch path pays one boolean test and fills neither dict.
        """
        stats = ExecStats()
        run = _PlanRun(self, stats, binds, token, analyze)
        rows = [run.output_tuple(row) for row in run.rows(plan, binding or {})]
        stats.rows_out = len(rows)
        return rows, stats


class _PlanRun:
    """State for one plan execution (stats, subquery caches)."""

    def __init__(self, executor: Executor, stats: ExecStats,
                 binds: Optional[dict] = None,
                 token: Optional[CancelToken] = None,
                 analyze: bool = False):
        self._executor = executor
        self._storage = executor._storage
        self._catalog = executor._catalog
        self._cm = executor._cm
        #: None in the common case — hot loops hoist ``token.check`` into
        #: a local and pay one ``is None`` test per row when disarmed
        self._token = token
        #: EXPLAIN ANALYZE profiling; False keeps dispatch allocation-free
        self._analyze = analyze
        self.stats = stats
        self._runner = TisSubqueryRunner(self)
        self._compiler = ExpressionCompiler(
            executor._functions, self._runner, binds
        )
        self._predicate_cache: dict[int, Callable[[Row], object]] = {}
        self._expr_cache: dict[int, Callable[[Row], object]] = {}
        self._subquery_plans: dict[int, Plan] = {}
        self._subquery_results: dict[tuple, list[tuple]] = {}

    # -- helpers ---------------------------------------------------------------

    def _compiled(self, expr: ast.Expr) -> Callable[[Row], object]:
        fn = self._expr_cache.get(id(expr))
        if fn is None:
            fn = self._compiler.compile(expr)
            self._expr_cache[id(expr)] = fn
        return fn

    def _count(self, plan: Plan, n: int = 1) -> None:
        label = type(plan).__name__
        self.stats.operator_rows[label] = self.stats.operator_rows.get(label, 0) + n
        self.stats.node_rows[id(plan)] = self.stats.node_rows.get(id(plan), 0) + n

    def output_tuple(self, row: Row) -> tuple:
        width = row.get("#width")
        if width is None:
            raise ExecutionError("top-level plan does not produce output rows")
        return tuple(row.get(f"#out:{i}") for i in range(width))

    # -- dispatch ---------------------------------------------------------------

    def rows(self, plan: Plan, binding: Row) -> Iterator[Row]:
        name = type(plan).__name__
        faults.check(f"executor.{name}", self._token)
        method = getattr(self, f"_run_{name.lower()}", None)
        if method is None:
            raise UnsupportedError(f"no executor for plan node {name}")
        if not self._analyze:
            return method(plan, binding)
        node_id = id(plan)
        invocations = self.stats.node_invocations
        invocations[node_id] = invocations.get(node_id, 0) + 1
        return self._profiled(method(plan, binding), node_id)

    def _profiled(self, rows: Iterator[Row], node_id: int) -> Iterator[Row]:
        """Meter one node's generator: wall-clock spent inside ``next()``
        (children included — they are metered wrappers themselves, and
        EXPLAIN ANALYZE subtracts direct children for self-time)."""
        seconds = self.stats.node_seconds
        clock = time.perf_counter
        while True:
            start = clock()
            try:
                row = next(rows)
            except StopIteration:
                seconds[node_id] = (
                    seconds.get(node_id, 0.0) + clock() - start
                )
                return
            seconds[node_id] = seconds.get(node_id, 0.0) + clock() - start
            yield row

    # -- leaves ---------------------------------------------------------------

    def _run_tablescan(self, plan: TableScan, binding: Row) -> Iterator[Row]:
        cm = self._cm
        data = self._storage.get(plan.table_name)
        predicates = [self._compiled(c) for c in plan.conjuncts]
        prefix = plan.alias
        n_pred = len(predicates)
        check = self._token.check if self._token is not None else None
        for row_id, stored in enumerate(data.rows):
            if check is not None:
                check()
            self.stats.charge(cm.scan_row + cm.predicate_eval * n_pred)
            row = dict(binding)
            for name, value in stored.items():
                row[f"{prefix}.{name}"] = value
            row[f"{prefix}.rowid"] = row_id
            if all(is_true(p(row)) for p in predicates):
                self._count(plan)
                yield row

    def _run_indexscan(self, plan: IndexScan, binding: Row) -> Iterator[Row]:
        cm = self._cm
        data = self._storage.get(plan.table_name)
        index_data = data.index_named(plan.index.name)
        eq_fns = [(column, self._compiled(expr)) for column, expr in plan.eq_binds]
        range_fn = None
        if plan.range_bind is not None:
            _column, op, expr = plan.range_bind
            range_fn = (op, self._compiled(expr))
        predicates = [self._compiled(c) for c in plan.post_conjuncts]
        prefix_values = tuple(fn(binding) for _c, fn in eq_fns)
        self.stats.charge(cm.index_probe)
        if any(v is None for v in prefix_values):
            return
        if range_fn is not None:
            op, fn = range_fn
            range_value = fn(binding)
            if range_value is None:
                return
            row_ids = index_data.scan(prefix_values, op, range_value)
        else:
            row_ids = index_data.scan(prefix_values)
        alias = plan.alias
        n_pred = len(predicates)
        check = self._token.check if self._token is not None else None
        for row_id in row_ids:
            if check is not None:
                check()
            self.stats.charge(cm.index_row + cm.predicate_eval * n_pred)
            stored = data.rows[row_id]
            row = dict(binding)
            for name, value in stored.items():
                row[f"{alias}.{name}"] = value
            row[f"{alias}.rowid"] = row_id
            if all(is_true(p(row)) for p in predicates):
                self._count(plan)
                yield row

    def _run_viewscan(self, plan: ViewScan, binding: Row) -> Iterator[Row]:
        cm = self._cm
        predicates = [self._compiled(c) for c in plan.conjuncts]
        alias = plan.alias
        columns = plan.column_names
        for child_row in self.rows(plan.child, binding):
            self.stats.charge(cm.materialise_row)
            width = child_row.get("#width", 0)
            row = dict(binding)
            for i in range(min(width, len(columns))):
                row[f"{alias}.{columns[i]}"] = child_row.get(f"#out:{i}")
            if all(is_true(p(row)) for p in predicates):
                self._count(plan)
                yield row

    # -- joins ---------------------------------------------------------------

    def _null_extend(self, row: Row, right: Plan) -> Row:
        extended = dict(row)
        for alias in right.aliases:
            for key in self._right_keys_of(right, alias):
                extended[key] = None
        return extended

    def _right_keys_of(self, right: Plan, alias: str) -> list[str]:
        if isinstance(right, (TableScan, IndexScan)):
            table = self._catalog.table(right.table_name)
            return [f"{alias}.{c}" for c in table.column_names + ["rowid"]]
        if isinstance(right, ViewScan):
            return [f"{alias}.{c}" for c in right.column_names]
        keys: list[str] = []
        for child in right.children():
            keys.extend(self._right_keys_of(child, alias)
                        if alias in child.aliases else [])
        return keys

    def _run_nestedloopjoin(self, plan: NestedLoopJoin, binding: Row) -> Iterator[Row]:
        cm = self._cm
        predicates = [self._compiled(c) for c in plan.conjuncts]
        parameterised = bool(_plan_dependencies(plan.right) & plan.left.aliases)
        materialised: Optional[list[Row]] = None
        semi_like = plan.join_type in ("SEMI", "ANTI", "ANTI_NA")
        probe_cache: dict[tuple, bool] = {}
        cache_key_fns = (
            self._probe_key_fns(plan) if semi_like else []
        )

        def inner_rows(left_row: Row) -> Iterator[Row]:
            nonlocal materialised
            if parameterised:
                yield from self.rows(plan.right, left_row)
                return
            if materialised is None:
                materialised = list(self.rows(plan.right, binding))
            for right_row in materialised:
                merged = dict(left_row)
                merged.update(right_row)
                yield merged

        check = self._token.check if self._token is not None else None
        for left_row in self.rows(plan.left, binding):
            if check is not None:
                check()
            if semi_like and cache_key_fns:
                key = tuple(fn(left_row) for fn in cache_key_fns)
                self.stats.charge(cm.tis_cache_probe)
                cached = probe_cache.get(key)
                if cached is not None:
                    self.stats.subquery_cache_hits += 1
                    if self._emit_for_match(plan.join_type, cached):
                        self._count(plan)
                        yield left_row
                    continue
            else:
                key = None

            if plan.join_type == "INNER":
                for merged in inner_rows(left_row):
                    self.stats.charge(cm.pipeline_row
                                      + cm.predicate_eval * len(predicates))
                    if all(is_true(p(merged)) for p in predicates):
                        self._count(plan)
                        yield merged
            elif plan.join_type == "LEFT":
                matched = False
                for merged in inner_rows(left_row):
                    self.stats.charge(cm.pipeline_row
                                      + cm.predicate_eval * len(predicates))
                    if all(is_true(p(merged)) for p in predicates):
                        matched = True
                        self._count(plan)
                        yield merged
                if not matched:
                    self._count(plan)
                    yield self._null_extend(left_row, plan.right)
            else:
                verdict = self._probe_match(
                    plan, left_row, inner_rows, predicates
                )
                if key is not None:
                    probe_cache[key] = verdict
                if self._emit_for_match(plan.join_type, verdict):
                    self._count(plan)
                    yield left_row

    def _probe_key_fns(self, plan: NestedLoopJoin):
        """Functions extracting, from a left row, every value the probe
        result depends on: left-side columns of the join condition plus
        any left-side values the (parameterised) right plan binds on —
        index-probe binds and lateral-view correlation columns.  Returns
        an empty list (caching disabled) if a dependency cannot be
        enumerated."""
        keys: list[str] = []
        for conjunct in plan.conjuncts:
            for col in ast.column_refs_in(conjunct):
                if col.qualifier in plan.left.aliases:
                    keys.append(f"{col.qualifier}.{col.name}")
        if not self._collect_bind_keys(plan.right, plan.left.aliases, keys):
            return []
        unique = sorted(set(keys))
        return [lambda row, k=k: row.get(k) for k in unique]

    def _collect_bind_keys(self, plan: Plan, left_aliases: frozenset,
                           keys: list[str]) -> bool:
        """Append the left-row keys *plan* binds on; False if unknown."""
        if isinstance(plan, IndexScan):
            exprs = [e for _c, e in plan.eq_binds]
            if plan.range_bind is not None:
                exprs.append(plan.range_bind[2])
            for expr in exprs:
                for col in ast.column_refs_in(expr):
                    if col.qualifier in left_aliases:
                        keys.append(f"{col.qualifier}.{col.name}")
        elif isinstance(plan, ViewScan):
            for qualifier, name in plan.correlation_keys:
                if qualifier in left_aliases:
                    keys.append(f"{qualifier}.{name}")
        for child in plan.children():
            if not self._collect_bind_keys(child, left_aliases, keys):
                return False
        return True

    def _probe_match(self, plan, left_row, inner_rows, predicates) -> bool:
        """For SEMI/ANTI: True when a match exists.  For ANTI_NA a row
        whose condition evaluates UNKNOWN also counts as a match (the left
        row must then be rejected)."""
        cm = self._cm
        null_aware = plan.join_type == "ANTI_NA"
        for merged in inner_rows(left_row):
            self.stats.charge(cm.pipeline_row
                              + cm.predicate_eval * len(predicates))
            if not predicates:
                return True
            saw_null = False
            all_true = True
            for predicate in predicates:
                value = predicate(merged)
                if value is None:
                    saw_null = True
                    all_true = False
                elif value is not True:
                    all_true = False
                    saw_null = False
                    break
            if all_true:
                return True
            if null_aware and saw_null:
                return True
        return False

    @staticmethod
    def _emit_for_match(join_type: str, matched: bool) -> bool:
        if join_type == "SEMI":
            return matched
        return not matched  # ANTI / ANTI_NA

    def _run_hashjoin(self, plan: HashJoin, binding: Row) -> Iterator[Row]:
        cm = self._cm
        left_key_fns = [self._compiled(k) for k in plan.left_keys]
        right_key_fns = [self._compiled(k) for k in plan.right_keys]
        residuals = [self._compiled(c) for c in plan.residual_conjuncts]

        check = self._token.check if self._token is not None else None
        table: dict[tuple, list[Row]] = {}
        build_has_null_key = False
        for right_row in self.rows(plan.right, binding):
            if check is not None:
                check()
            self.stats.charge(cm.hash_row)
            key = tuple(fn(right_row) for fn in right_key_fns)
            if any(v is None for v in key):
                build_has_null_key = True
                continue
            table.setdefault(key, []).append(right_row)

        join_type = plan.join_type
        for left_row in self.rows(plan.left, binding):
            if check is not None:
                check()
            self.stats.charge(cm.hash_row)
            key = tuple(fn(left_row) for fn in left_key_fns)
            key_has_null = any(v is None for v in key)
            matches = [] if key_has_null else table.get(key, [])

            if join_type in ("INNER", "LEFT"):
                matched = False
                for right_row in matches:
                    merged = dict(left_row)
                    merged.update(right_row)
                    self.stats.charge(
                        cm.pipeline_row + cm.predicate_eval * len(residuals)
                    )
                    if all(is_true(p(merged)) for p in residuals):
                        matched = True
                        self._count(plan)
                        yield merged
                if join_type == "LEFT" and not matched:
                    self._count(plan)
                    yield self._null_extend(left_row, plan.right)
                continue

            matched = False
            for right_row in matches:
                merged = dict(left_row)
                merged.update(right_row)
                self.stats.charge(
                    cm.pipeline_row + cm.predicate_eval * len(residuals)
                )
                if all(is_true(p(merged)) for p in residuals):
                    matched = True
                    break
            if join_type == "SEMI":
                if matched:
                    self._count(plan)
                    yield left_row
            elif join_type == "ANTI":
                if not matched:
                    self._count(plan)
                    yield left_row
            else:  # ANTI_NA: NULLs on either side mean "possible match".
                if table or build_has_null_key:
                    if matched or key_has_null or build_has_null_key:
                        continue
                self._count(plan)
                yield left_row

    def _run_mergejoin(self, plan: MergeJoin, binding: Row) -> Iterator[Row]:
        cm = self._cm
        left_key_fns = [self._compiled(k) for k in plan.left_keys]
        right_key_fns = [self._compiled(k) for k in plan.right_keys]
        residuals = [self._compiled(c) for c in plan.residual_conjuncts]

        left_rows = list(self.rows(plan.left, binding))
        right_rows = list(self.rows(plan.right, binding))
        self.stats.charge(cm.sort_cost(len(left_rows)) + cm.sort_cost(len(right_rows)))

        def sortable(rows: list[Row], fns) -> list[tuple[tuple, Row]]:
            return sorted(
                ((tuple(fn(r) for fn in fns), r) for r in rows),
                key=lambda pair: tuple(_sort_key(v, False) for v in pair[0]),
            )

        left_sorted = sortable(left_rows, left_key_fns)
        right_sorted = sortable(right_rows, right_key_fns)
        join_type = plan.join_type
        j = 0
        n_right = len(right_sorted)
        check = self._token.check if self._token is not None else None
        for key, left_row in left_sorted:
            if check is not None:
                check()
            self.stats.charge(cm.pipeline_row)
            if any(v is None for v in key):
                if join_type == "LEFT":
                    self._count(plan)
                    yield self._null_extend(left_row, plan.right)
                elif join_type in ("ANTI", "ANTI_NA"):
                    if join_type == "ANTI":
                        self._count(plan)
                        yield left_row
                continue
            while j < n_right and _key_less(right_sorted[j][0], key):
                j += 1
            matched = False
            k = j
            while k < n_right and right_sorted[k][0] == key:
                right_row = right_sorted[k][1]
                merged = dict(left_row)
                merged.update(right_row)
                self.stats.charge(
                    cm.pipeline_row + cm.predicate_eval * len(residuals)
                )
                if all(is_true(p(merged)) for p in residuals):
                    matched = True
                    if join_type in ("INNER", "LEFT"):
                        self._count(plan)
                        yield merged
                    else:
                        break
                k += 1
            if join_type == "LEFT" and not matched:
                self._count(plan)
                yield self._null_extend(left_row, plan.right)
            elif join_type == "SEMI" and matched:
                self._count(plan)
                yield left_row
            elif join_type in ("ANTI",) and not matched:
                self._count(plan)
                yield left_row

    # -- filters and post-join stages --------------------------------------------

    def _run_filter(self, plan: Filter, binding: Row) -> Iterator[Row]:
        cm = self._cm
        predicates = [self._compiled(c) for c in plan.conjuncts]
        extra = sum(
            self._executor._catalog.function_cost(node.name)
            for c in plan.conjuncts
            for node in c.walk()
            if isinstance(node, ast.FuncCall)
        )
        check = self._token.check if self._token is not None else None
        for row in self.rows(plan.child, binding):
            if check is not None:
                check()
            self.stats.charge(cm.predicate_eval * len(predicates) + extra)
            if all(is_true(p(row)) for p in predicates):
                self._count(plan)
                yield row

    def _run_groupby(self, plan: GroupBy, binding: Row) -> Iterator[Row]:
        cm = self._cm
        key_fns = [self._compiled(g) for g in plan.group_exprs]
        agg_specs = []
        for call in plan.aggregates:
            is_star = bool(call.args) and isinstance(call.args[0], ast.Star)
            arg_fn = None if is_star else self._compiled(call.args[0])
            agg_specs.append((call, arg_fn, is_star))

        rows = list(self.rows(plan.child, binding))
        per_row = cm.agg_row * max(len(agg_specs), 1)
        output = evaluate_group_by(
            rows,
            plan.group_exprs,
            key_fns,
            plan.grouping_sets,
            agg_specs,
            on_row=lambda: self.stats.charge(per_row),
            empty_base=binding,
        )
        check = self._token.check if self._token is not None else None
        for row in output:
            if check is not None:
                check()
            self.stats.charge(cm.pipeline_row)
            self._count(plan)
            yield row

    def _run_windowcompute(self, plan: WindowCompute, binding: Row) -> Iterator[Row]:
        cm = self._cm
        rows = [dict(r) for r in self.rows(plan.child, binding)]
        self.stats.charge(len(rows) * cm.window_row * len(plan.windows))
        for window in plan.windows:
            compute_window(window, rows, self._compiler, _sort_key)
        check = self._token.check if self._token is not None else None
        for row in rows:
            if check is not None:
                check()
            self._count(plan)
            yield row

    def _run_project(self, plan: Project, binding: Row) -> Iterator[Row]:
        cm = self._cm
        fns = [self._compiled(item.expr) for item in plan.select_items]
        width = len(fns)
        for row in self.rows(plan.child, binding):
            self.stats.charge(cm.pipeline_row)
            out = dict(row)
            for i, fn in enumerate(fns):
                out[f"#out:{i}"] = fn(row)
            out["#width"] = width
            self._count(plan)
            yield out

    def _run_distinct(self, plan: Distinct, binding: Row) -> Iterator[Row]:
        cm = self._cm
        seen: set[tuple] = set()
        for row in self.rows(plan.child, binding):
            self.stats.charge(cm.hash_row)
            key = self.output_tuple(row)
            if key not in seen:
                seen.add(key)
                self._count(plan)
                yield row

    def _run_sort(self, plan: Sort, binding: Row) -> Iterator[Row]:
        cm = self._cm
        rows = list(self.rows(plan.child, binding))
        self.stats.charge(cm.sort_cost(len(rows)))
        order_fns = [self._compiled(o.expr) for o in plan.order_by]
        for fn, item in reversed(list(zip(order_fns, plan.order_by))):
            rows.sort(
                key=lambda row, fn=fn, d=item.descending: _sort_key(fn(row), d),
                reverse=item.descending,
            )
        check = self._token.check if self._token is not None else None
        for row in rows:
            if check is not None:
                check()
            self._count(plan)
            yield row

    def _run_limit(self, plan: Limit, binding: Row) -> Iterator[Row]:
        emitted = 0
        if plan.count <= 0:
            return
        for row in self.rows(plan.child, binding):
            self._count(plan)
            yield row
            emitted += 1
            if emitted >= plan.count:
                return

    def _run_setop(self, plan: SetOp, binding: Row) -> Iterator[Row]:
        cm = self._cm
        check = self._token.check if self._token is not None else None

        def branch_tuples(branch: Plan) -> list[tuple]:
            return [self.output_tuple(r) for r in self.rows(branch, binding)]

        def emit(values: tuple) -> Row:
            row: Row = {"#width": len(values)}
            for i, value in enumerate(values):
                row[f"#out:{i}"] = value
            return row

        if plan.op == "UNION ALL":
            for branch in plan.branches:
                for values in branch_tuples(branch):
                    if check is not None:
                        check()
                    self.stats.charge(cm.pipeline_row)
                    self._count(plan)
                    yield emit(values)
            return
        if plan.op == "UNION":
            seen: set[tuple] = set()
            for branch in plan.branches:
                for values in branch_tuples(branch):
                    if check is not None:
                        check()
                    self.stats.charge(cm.hash_row)
                    if values not in seen:
                        seen.add(values)
                        self._count(plan)
                        yield emit(values)
            return
        left, right = plan.branches
        right_set = set(branch_tuples(right))
        self.stats.charge(cm.hash_row * len(right_set))
        seen = set()
        for values in branch_tuples(left):
            if check is not None:
                check()
            self.stats.charge(cm.hash_row)
            if values in seen:
                continue
            if (plan.op == "INTERSECT") == (values in right_set):
                seen.add(values)
                self._count(plan)
                yield emit(values)


class TisSubqueryRunner:
    """SubqueryRunner that plans (via the Database's optimizer) and
    executes subqueries per outer row, caching results on the correlation
    values."""

    def __init__(self, run: _PlanRun):
        self._run = run

    # -- plumbing -------------------------------------------------------------

    def _rows_for(self, sub: ast.SubqueryExpr, outer_row: Row) -> list[tuple]:
        run = self._run
        node = sub.query
        if not isinstance(node, QueryNode):
            raise ExecutionError("subquery was not built into a query tree")
        corr_keys = self._correlation_keys(sub)
        cache_key = (id(node),) + tuple(outer_row.get(k) for k in corr_keys)
        run.stats.charge(run._cm.tis_cache_probe)
        cached = run._subquery_results.get(cache_key)
        if cached is not None:
            run.stats.subquery_cache_hits += 1
            return cached
        plan = run._subquery_plans.get(id(node))
        if plan is None:
            planner = run._executor._plan_subquery
            if planner is None:
                raise ExecutionError(
                    "executor has no subquery planner configured"
                )
            plan = planner(node)
            run._subquery_plans[id(node)] = plan
        run.stats.subquery_invocations += 1
        rows = [
            run.output_tuple(r) for r in run.rows(plan, dict(outer_row))
        ]
        run._subquery_results[cache_key] = rows
        return rows

    def _correlation_keys(self, sub: ast.SubqueryExpr) -> tuple[str, ...]:
        cached = getattr(sub, "_corr_keys", None)
        if cached is not None:
            return cached
        keys = tuple(
            sorted(
                {
                    f"{ref.qualifier}.{ref.name}"
                    for ref in sub.query.correlation_refs()
                }
            )
        )
        try:
            sub._corr_keys = keys  # type: ignore[attr-defined]
        except AttributeError:
            pass
        return keys

    # -- SubqueryRunner interface ---------------------------------------------

    def scalar(self, sub: ast.SubqueryExpr, outer_row: Row) -> object:
        rows = self._rows_for(sub, outer_row)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("single-row subquery returned more than one row")
        return rows[0][0]

    def exists(self, sub: ast.SubqueryExpr, outer_row: Row) -> bool:
        return bool(self._rows_for(sub, outer_row))

    def in_probe(self, sub: ast.SubqueryExpr, left_values: tuple,
                 outer_row: Row) -> object:
        rows = self._rows_for(sub, outer_row)
        saw_null = False
        for row in rows:
            verdict = _row_equal(left_values, row)
            if verdict is True:
                return True
            if verdict is None:
                saw_null = True
        return None if saw_null else False

    def quantified(self, sub: ast.SubqueryExpr, left_value: object,
                   outer_row: Row) -> object:
        rows = self._rows_for(sub, outer_row)
        results = [sql_compare(sub.op, left_value, row[0]) for row in rows]
        if sub.quantifier == "ANY":
            if any(r is True for r in results):
                return True
            if any(r is None for r in results):
                return None
            return False
        if any(r is False for r in results):
            return False
        if any(r is None for r in results):
            return None
        return True


def _plan_dependencies(plan: Plan) -> set[str]:
    """Aliases outside *plan* that its leaves depend on (parameterised
    index binds, lateral view references)."""
    deps: set[str] = set()
    if isinstance(plan, IndexScan):
        deps |= plan.outer_aliases()
    if isinstance(plan, ViewScan):
        deps |= set(plan.lateral_refs)
    for child in plan.children():
        deps |= _plan_dependencies(child)
    return deps - plan.aliases


def _key_less(a: tuple, b: tuple) -> bool:
    return tuple(_sort_key(v, False) for v in a) < tuple(_sort_key(v, False) for v in b)
