"""Compilation of expression trees to Python closures.

Rows are dicts keyed ``"alias.column"``.  Compiled expressions implement
SQL three-valued logic: any comparison or arithmetic over NULL yields
NULL (``None``); AND/OR/NOT follow Kleene logic; WHERE treats NULL as
false (the caller applies :func:`is_true`).

Aggregate and window function calls are *not* evaluated row-at-a-time:
the evaluator computes them per group/partition and exposes the results
as pseudo-columns (``#agg:<sql>`` / ``#win:<sql>``); the compiler turns
such nodes into lookups of those keys.

Scalar/EXISTS/IN subqueries compile to calls into a
:class:`SubqueryRunner`, which both the reference evaluator and the
plan executor implement (the latter with tuple-iteration-semantics
caching, §2.1.1/§2.2.1 of the paper).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from ..errors import ExecutionError, UnsupportedError
from ..sql import ast
from ..sql.render import render_expr

Row = dict
CompiledExpr = Callable[[Row], object]


def agg_key(expr: ast.FuncCall) -> str:
    """Pseudo-column key under which an aggregate's value is stored."""
    return f"#agg:{render_expr(expr)}"


def window_key(expr: ast.WindowFunc) -> str:
    """Pseudo-column key under which a window value is stored."""
    return f"#win:{render_expr(expr)}"


def grouping_key(expr: ast.Expr) -> str:
    """Pseudo-column key for the GROUPING(col) indicator."""
    return f"#grouping:{render_expr(expr)}"


def is_true(value: object) -> bool:
    """SQL WHERE semantics: NULL and FALSE both reject the row."""
    return value is True


class SubqueryRunner(Protocol):
    """Evaluates subquery expressions against an outer row."""

    def scalar(self, sub: ast.SubqueryExpr, outer_row: Row) -> object: ...

    def exists(self, sub: ast.SubqueryExpr, outer_row: Row) -> bool: ...

    def in_probe(self, sub: ast.SubqueryExpr, left_values: tuple,
                 outer_row: Row) -> object: ...

    def quantified(self, sub: ast.SubqueryExpr, left_value: object,
                   outer_row: Row) -> object: ...


class FunctionRegistry:
    """Scalar function implementations available to the engine."""

    def __init__(self) -> None:
        self._functions: dict[str, Callable] = {}
        self._register_builtins()

    def _register_builtins(self) -> None:
        def null_safe(fn: Callable) -> Callable:
            def wrapped(*args):
                if any(a is None for a in args):
                    return None
                return fn(*args)
            return wrapped

        self._functions.update({
            "UPPER": null_safe(lambda s: str(s).upper()),
            "LOWER": null_safe(lambda s: str(s).lower()),
            "LENGTH": null_safe(lambda s: len(str(s))),
            "ABS": null_safe(abs),
            "MOD": null_safe(lambda a, b: a % b),
            "FLOOR": null_safe(lambda x: int(x // 1)),
            "CEIL": null_safe(lambda x: int(-((-x) // 1))),
            "ROUND": null_safe(lambda x, n=0: round(x, int(n))),
            "SUBSTR": null_safe(
                lambda s, start, length=None: (
                    str(s)[int(start) - 1:]
                    if length is None
                    else str(s)[int(start) - 1:int(start) - 1 + int(length)]
                )
            ),
        })
        # LNNVL(p) is Oracle's "p is false or unknown" — used by
        # OR-expansion to make UNION ALL branches disjoint.
        self._functions["LNNVL"] = lambda p: p is not True
        # Variadic null handling.
        self._functions["NVL"] = lambda a, b: b if a is None else a
        self._functions["COALESCE"] = lambda *args: next(
            (a for a in args if a is not None), None
        )
        self._functions["GREATEST"] = lambda *args: (
            None if any(a is None for a in args) else max(args)
        )
        self._functions["LEAST"] = lambda *args: (
            None if any(a is None for a in args) else min(args)
        )

    def register(self, name: str, fn: Callable) -> None:
        self._functions[name.upper()] = fn

    def get(self, name: str) -> Callable:
        try:
            return self._functions[name.upper()]
        except KeyError:
            raise ExecutionError(f"unknown function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._functions


def sql_eq(a: object, b: object) -> object:
    """Three-valued equality."""
    if a is None or b is None:
        return None
    return a == b


def sql_compare(op: str, a: object, b: object) -> object:
    if a is None or b is None:
        return None
    try:
        if op == "=":
            return a == b
        if op == "<>":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}"
        ) from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


class ExpressionCompiler:
    """Compiles expression trees into closures over row dicts."""

    def __init__(
        self,
        functions: FunctionRegistry,
        subquery_runner: Optional[SubqueryRunner] = None,
        binds: Optional[dict] = None,
    ):
        self._functions = functions
        self._subqueries = subquery_runner
        self._binds = binds or {}

    def compile(self, expr: ast.Expr) -> CompiledExpr:
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            # Subclasses of ColumnRef (e.g. the builder's rownum marker).
            if isinstance(expr, ast.ColumnRef):
                return self._compile_columnref(expr)
            raise UnsupportedError(
                f"cannot compile expression {type(expr).__name__}"
            )
        return method(expr)

    def compile_predicate(self, expr: ast.Expr) -> Callable[[Row], bool]:
        compiled = self.compile(expr)
        return lambda row: compiled(row) is True

    # -- leaves ---------------------------------------------------------------

    def _compile_columnref(self, expr: ast.ColumnRef) -> CompiledExpr:
        if expr.qualifier is None:
            raise ExecutionError(f"unresolved column reference {expr.name!r}")
        key = f"{expr.qualifier}.{expr.name}"
        return lambda row: row.get(key)

    def _compile_literal(self, expr: ast.Literal) -> CompiledExpr:
        value = expr.value
        return lambda _row: value

    def _compile_star(self, expr: ast.Star) -> CompiledExpr:
        raise ExecutionError("bare * cannot be evaluated as a value")

    def _compile_bindparam(self, expr: ast.BindParam) -> CompiledExpr:
        # Binds are resolved at compile time: one plan, any bind values —
        # the compiler is constructed per execution with that run's binds.
        try:
            value = self._binds[expr.key]
        except KeyError:
            raise ExecutionError(
                f"no value bound for parameter :{expr.key}"
            ) from None
        return lambda _row: value

    # -- operators -------------------------------------------------------------

    def _compile_binop(self, expr: ast.BinOp) -> CompiledExpr:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        op = expr.op
        if op in ast.COMPARISON_OPERATORS:
            return lambda row: sql_compare(op, left(row), right(row))
        if op == "||":
            def concat(row):
                a, b = left(row), right(row)
                if a is None or b is None:
                    return None
                return str(a) + str(b)
            return concat

        def arith(row):
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            try:
                if op == "+":
                    return a + b
                if op == "-":
                    return a - b
                if op == "*":
                    return a * b
                if op == "/":
                    if b == 0:
                        raise ExecutionError("division by zero")
                    return a / b
                if op == "%":
                    return a % b
            except TypeError as exc:
                raise ExecutionError(
                    f"bad operand types for {op!r}: "
                    f"{type(a).__name__}, {type(b).__name__}"
                ) from exc
            raise ExecutionError(f"unknown operator {op!r}")

        return arith

    def _compile_and(self, expr: ast.And) -> CompiledExpr:
        operands = [self.compile(op) for op in expr.operands]

        def evaluate(row):
            saw_null = False
            for operand in operands:
                value = operand(row)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True

        return evaluate

    def _compile_or(self, expr: ast.Or) -> CompiledExpr:
        operands = [self.compile(op) for op in expr.operands]

        def evaluate(row):
            saw_null = False
            for operand in operands:
                value = operand(row)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False

        return evaluate

    def _compile_not(self, expr: ast.Not) -> CompiledExpr:
        operand = self.compile(expr.operand)

        def evaluate(row):
            value = operand(row)
            if value is None:
                return None
            return not value

        return evaluate

    def _compile_isnull(self, expr: ast.IsNull) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    def _compile_between(self, expr: ast.Between) -> CompiledExpr:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def evaluate(row):
            value = operand(row)
            lo_ok = sql_compare(">=", value, low(row))
            hi_ok = sql_compare("<=", value, high(row))
            result = _and3(lo_ok, hi_ok)
            if result is None:
                return None
            return (not result) if negated else result

        return evaluate

    def _compile_like(self, expr: ast.Like) -> CompiledExpr:
        import re

        operand = self.compile(expr.operand)
        pattern_expr = self.compile(expr.pattern)
        negated = expr.negated
        cache: dict[str, re.Pattern] = {}

        def evaluate(row):
            value = operand(row)
            pattern = pattern_expr(row)
            if value is None or pattern is None:
                return None
            regex = cache.get(pattern)
            if regex is None:
                regex = re.compile(
                    "^" + re.escape(str(pattern)).replace("%", ".*").replace("_", ".")
                    + "$",
                    re.DOTALL,
                )
                cache[pattern] = regex
            result = bool(regex.match(str(value)))
            return (not result) if negated else result

        return evaluate

    def _compile_inlist(self, expr: ast.InList) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def evaluate(row):
            value = operand(row)
            saw_null = False
            for item in items:
                result = sql_eq(value, item(row))
                if result is True:
                    return False if negated else True
                if result is None:
                    saw_null = True
            if saw_null:
                return None
            return True if negated else False

        return evaluate

    def _compile_rowexpr(self, expr: ast.RowExpr) -> CompiledExpr:
        items = [self.compile(item) for item in expr.items]
        return lambda row: tuple(item(row) for item in items)

    def _compile_case(self, expr: ast.Case) -> CompiledExpr:
        whens = [(self.compile(c), self.compile(r)) for c, r in expr.whens]
        default = self.compile(expr.default) if expr.default is not None else None

        def evaluate(row):
            for cond, result in whens:
                if cond(row) is True:
                    return result(row)
            return default(row) if default is not None else None

        return evaluate

    def _compile_funccall(self, expr: ast.FuncCall) -> CompiledExpr:
        if expr.is_aggregate:
            key = agg_key(expr)
            return lambda row: row.get(key)
        if expr.name == "GROUPING" and len(expr.args) == 1:
            # GROUPING(col): 1 when col is rolled up in this output row's
            # grouping set, else 0; filled in by the group-by evaluator.
            key = grouping_key(expr.args[0])
            return lambda row: row.get(key, 0)
        fn = self._functions.get(expr.name)
        args = [self.compile(arg) for arg in expr.args]

        def evaluate(row):
            return fn(*(arg(row) for arg in args))

        return evaluate

    def _compile_windowfunc(self, expr: ast.WindowFunc) -> CompiledExpr:
        key = window_key(expr)
        return lambda row: row.get(key)

    def _compile_subqueryexpr(self, expr: ast.SubqueryExpr) -> CompiledExpr:
        runner = self._subqueries
        if runner is None:
            raise ExecutionError(
                "subquery evaluation requires a SubqueryRunner"
            )
        if expr.kind == "SCALAR":
            return lambda row: runner.scalar(expr, row)
        if expr.kind == "EXISTS":
            negated = expr.negated

            def exists(row):
                result = runner.exists(expr, row)
                return (not result) if negated else result

            return exists
        if expr.kind == "IN":
            left = self.compile(expr.left)
            negated = expr.negated

            def in_probe(row):
                left_value = left(row)
                values = (
                    left_value if isinstance(left_value, tuple) else (left_value,)
                )
                result = runner.in_probe(expr, values, row)
                if result is None:
                    return None
                return (not result) if negated else result

            return in_probe
        if expr.kind == "QUANTIFIED":
            left = self.compile(expr.left)
            return lambda row: runner.quantified(expr, left(row), row)
        raise UnsupportedError(f"unknown subquery kind {expr.kind!r}")


def _and3(a: object, b: object) -> object:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


# ---------------------------------------------------------------------------
# Aggregate accumulation (shared by group-by evaluation and window frames)
# ---------------------------------------------------------------------------


class Accumulator:
    """Incremental computation of one aggregate function."""

    def __init__(self, name: str, distinct: bool):
        self.name = name
        self.distinct = distinct
        self._values: list = []
        self._seen: set = set()
        self._count_star = 0

    def add_star(self) -> None:
        self._count_star += 1

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._values.append(value)

    def result(self) -> object:
        name = self.name
        if name == "COUNT":
            if self._count_star:
                return self._count_star
            return len(self._values)
        if not self._values:
            return None
        if name == "SUM":
            return sum(self._values)
        if name == "AVG":
            return sum(self._values) / len(self._values)
        if name == "MIN":
            return min(self._values)
        if name == "MAX":
            return max(self._values)
        raise ExecutionError(f"unknown aggregate {name!r}")
