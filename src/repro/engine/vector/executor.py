"""Batch-at-a-time plan execution sharing the row engine's accounting.

:class:`VectorExecutor` is a drop-in alternative to
:meth:`repro.engine.executor.Executor.execute`: same signature, same
:class:`~repro.engine.executor.ExecStats`, same output tuples.  The hot
path — table scan, filter, projection, hash join, hash aggregate,
distinct, sort, set operations — runs batch-at-a-time over columnar
:class:`~repro.engine.vector.batch.Batch` chunks with compiled kernels;
every other operator (index/view scans, nested-loop and merge joins,
windows, COUNT STOPKEY) bridges to the untouched row engine, whose
dispatch in turn reroutes vector-native *subtrees* back to the batch
engine, so the two interleave freely within one plan.

Two invariants the hybrid guarantees:

* **Work-unit parity.**  Every batch operator charges exactly the
  per-row :class:`~repro.optimizer.costmodel.CostModel` constants the row
  executor charges — including the SEMI/ANTI hash-probe short-circuit
  (candidates are costed round-by-round until each row's first passing
  match, mirroring the row loop's ``break``).  Committed work-unit
  baselines therefore hold under either engine.  Subtrees under a COUNT
  STOPKEY run entirely on the row engine: its per-row pipelining is what
  the stop-key cost model assumes, and batch granularity would over-
  charge the truncated scans.
* **Control-point parity.**  Each vector operator still fires the row
  engine's ``executor.<Op>`` fault-injection point at instantiation, and
  additionally fires ``executor.batch.<Op>`` plus a cancellation-token
  poll before every batch it emits, so timeouts, ``Cursor.cancel()`` and
  chaos suites keep their guarantees at batch boundaries.  A fault fired
  mid-stream discards the batch being produced — partial batches never
  leak downstream.

Expressions that resist kernel compilation (subqueries, GROUPING,
non-literal LIKE patterns) make the *operator* fall back to the bridge
rather than mixing per-row closures into batch loops; evaluation order —
and therefore subquery invocation counts and TIS cache charges — stays
identical to the row engine.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional, Sequence

from ...errors import ExecutionError
from ...optimizer.plans import (
    Filter,
    GroupBy,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Plan,
    Project,
    SetOp,
    Sort,
    TableScan,
)
from ...resilience import CancelToken, faults
from ...sql import ast
from ..executor import ExecStats, Executor, _PlanRun
from ..expressions import Accumulator, Row, agg_key
from ..grouping import _hashable
from ..reference import _sort_key
from ..tables import TableLike
from . import batch as vbatch
from .batch import Batch, chunk_rows
from .kernels import KernelCompiler, NotVectorizable, PredicateKernel, ValueKernel

#: rows per batch / per scan morsel
BATCH_SIZE = 1024

#: plan-node class names the batch engine executes natively; everything
#: else bridges to the row engine
VECTOR_OPERATORS = frozenset({
    "TableScan",
    "Filter",
    "Project",
    "HashJoin",
    "GroupBy",
    "Distinct",
    "Sort",
    "SetOp",
})

_MISSING = object()

# _NullKey's lazy singleton is not thread-safe on first creation; force
# it at import time so parallel group-by partials can race safely.
_NULL_KEY = _hashable(None)


def _columnar(data: TableLike) -> dict[str, list]:
    """Columnar view of a table's rows (bare column names + ``rowid``),
    cached on the table's immutable :class:`TableVersion` — copy-on-write
    storage means a version's columnar form never goes stale, and pinned
    snapshots of the same committed state share one build."""
    return data.columnar()


class VectorExecutor:
    """Executes plans batch-at-a-time (optionally morsel-parallel).

    Wraps a row :class:`~repro.engine.executor.Executor` — the bridge
    target, fallback path, and TIS subquery machinery all come from it.
    ``workers > 0`` arms the morsel pool: scans partition into morsels
    dispatched to a thread pool, hash-join build key extraction runs
    partition-parallel, and aggregates accumulate per-batch partials
    merged in batch order.
    """

    def __init__(self, executor: Executor, workers: int = 0):
        self._executor = executor
        self._workers = workers

    def execute(
        self,
        plan: Plan,
        binding: Optional[Row] = None,
        binds: Optional[dict] = None,
        token: Optional[CancelToken] = None,
        analyze: bool = False,
    ) -> tuple[list[tuple], ExecStats]:
        """Run *plan* to completion; returns output tuples and stats."""
        stats = ExecStats()
        stats.executor_mode = "parallel" if self._workers else "vector"
        pool = None
        if self._workers:
            from .parallel import MorselPool

            pool = MorselPool(self._workers)
        out: list[tuple] = []
        try:
            run = _VectorRun(
                self._executor, stats, binds, token, analyze, pool
            )
            for batch in run.batches(plan, binding or {}):
                out.extend(batch.output_tuples())
        finally:
            if pool is not None:
                pool.shutdown()
        stats.rows_out = len(out)
        return out, stats


class _BridgeRun(_PlanRun):
    """Row-engine run whose dispatch reroutes vector-native subtrees back
    to the batch engine, so bridged operators (NLJ, merge join, limits,
    views, TIS subquery plans) still scan and join columnar underneath.

    Subtrees under a COUNT STOPKEY are pinned to the row engine for
    work-unit parity: the Limit registers its descendants before they
    are dispatched.
    """

    def __init__(self, executor: Executor, stats: ExecStats,
                 binds: Optional[dict], token: Optional[CancelToken],
                 analyze: bool, vector_run: "_VectorRun"):
        super().__init__(executor, stats, binds, token, analyze)
        self._vector_run = vector_run
        self._row_only: set[int] = set()

    def mark_row_only(self, plan: Plan) -> None:
        for node in plan.walk():
            self._row_only.add(id(node))

    def pin_early_stop_subtrees(self, plan: Plan) -> None:
        """Pin subtrees whose row-engine consumer stops pulling early —
        batch-at-a-time eagerness there would over-charge work units.
        Two such consumers exist: COUNT STOPKEY (Limit), and the inner
        side of a semi/anti nested-loop probe, which stops at the first
        qualifying match per outer row."""
        if isinstance(plan, Limit):
            self.mark_row_only(plan)
        elif isinstance(plan, NestedLoopJoin) and plan.join_type in (
            "SEMI",
            "ANTI",
            "ANTI_NA",
        ):
            self.mark_row_only(plan.right)

    def rows(self, plan: Plan, binding: Row) -> Iterator[Row]:
        if (
            type(plan).__name__ in VECTOR_OPERATORS
            and id(plan) not in self._row_only
        ):
            return self._vector_run.rows_of(plan, binding)
        self.pin_early_stop_subtrees(plan)
        return super().rows(plan, binding)


class _VectorRun:
    """State for one batch-engine execution."""

    def __init__(self, executor: Executor, stats: ExecStats,
                 binds: Optional[dict], token: Optional[CancelToken],
                 analyze: bool, pool=None):
        self._executor = executor
        self._storage = executor._storage
        self._catalog = executor._catalog
        self._cm = executor._cm
        self._token = token
        self._analyze = analyze
        self.stats = stats
        self._pool = pool
        #: the row engine half of the hybrid (bridging + TIS subqueries)
        self._rows = _BridgeRun(executor, stats, binds, token, analyze, self)
        self._kernels = KernelCompiler(executor._functions, binds)
        self._pred_cache: dict[tuple, Optional[PredicateKernel]] = {}
        self._value_cache: dict[int, Optional[ValueKernel]] = {}

    # -- kernel caches ----------------------------------------------------------

    def _predicate(self, conjuncts: Sequence[ast.Expr]) -> Optional[PredicateKernel]:
        """Fused predicate kernel; ``None`` for an empty conjunct list.
        Raises :class:`NotVectorizable` when any conjunct resists — the
        caller then bridges the whole operator so *all* conjuncts run on
        the row path in original order."""
        if not conjuncts:
            return None
        key = tuple(id(c) for c in conjuncts)
        kernel = self._pred_cache.get(key, _MISSING)
        if kernel is _MISSING:
            kernel = self._kernels.predicate(conjuncts)
            self._pred_cache[key] = kernel
        if kernel is None:
            raise NotVectorizable("predicate")
        return kernel

    def _value(self, expr: ast.Expr) -> ValueKernel:
        kernel = self._value_cache.get(id(expr), _MISSING)
        if kernel is _MISSING:
            kernel = self._kernels.values(expr)
            self._value_cache[id(expr)] = kernel
        if kernel is None:
            raise NotVectorizable("expression")
        return kernel

    # -- dispatch ---------------------------------------------------------------

    def batches(self, plan: Plan, binding: Row) -> Iterator[Batch]:
        """Dispatch one plan node: vector-native when its kernels
        compile, bridged to the row engine otherwise."""
        name = type(plan).__name__
        if name in VECTOR_OPERATORS and id(plan) not in self._rows._row_only:
            try:
                gen = getattr(self, f"_vec_{name.lower()}")(plan, binding)
            except NotVectorizable:
                gen = None
            if gen is not None:
                # legacy per-operator fault point, fired at instantiation
                # exactly like the row engine's dispatch
                faults.check(f"executor.{name}", self._token)
                if self._analyze:
                    invocations = self.stats.node_invocations
                    invocations[id(plan)] = invocations.get(id(plan), 0) + 1
                return self._metered(gen, plan, name)
        return self._bridge(plan, binding)

    def _bridge(self, plan: Plan, binding: Row) -> Iterator[Batch]:
        """Run *plan* on the row engine, re-chunking its rows; the row
        dispatch reroutes any vector-native descendants back here."""
        self._rows.pin_early_stop_subtrees(plan)
        rows = _PlanRun.rows(self._rows, plan, binding)
        return chunk_rows(rows, BATCH_SIZE)

    def rows_of(self, plan: Plan, binding: Row) -> Iterator[Row]:
        """Row view of a vector-native subtree (bridge direction 2)."""
        for batch in self.batches(plan, binding):
            yield from batch.to_rows(binding)

    def _metered(self, gen: Iterator[Batch], plan: Plan,
                 name: str) -> Iterator[Batch]:
        """Per-batch control points: the ``executor.batch.<Op>`` fault
        point and a cancellation poll fire *before* each batch is
        produced, and actual-row counts accumulate per batch."""
        point = f"executor.batch.{name}"
        token = self._token
        count = self._rows._count
        analyze = self._analyze
        node_id = id(plan)
        seconds = self.stats.node_seconds
        clock = time.perf_counter
        while True:
            faults.check(point, token)
            if token is not None:
                token.check()
            start = clock() if analyze else 0.0
            try:
                batch = next(gen)
            except StopIteration:
                if analyze:
                    seconds[node_id] = (
                        seconds.get(node_id, 0.0) + clock() - start
                    )
                return
            if analyze:
                seconds[node_id] = (
                    seconds.get(node_id, 0.0) + clock() - start
                )
            if batch.length:
                count(plan, batch.length)
                yield batch

    # -- leaves ---------------------------------------------------------------

    def _vec_tablescan(self, plan: TableScan, binding: Row) -> Iterator[Batch]:
        kernel = self._predicate(plan.conjuncts)
        data = self._storage.get(plan.table_name)
        return self._scan_batches(plan, kernel, data, binding)

    def _scan_batches(self, plan: TableScan,
                      kernel: Optional[PredicateKernel],
                      data: TableLike, binding: Row) -> Iterator[Batch]:
        charge = self.stats.charge
        cm = self._cm
        # charged per *stored* row, filtered or not — same as the row loop
        per_row = cm.scan_row + cm.predicate_eval * len(plan.conjuncts)
        alias = plan.alias
        columns = {
            f"{alias}.{name}": col for name, col in _columnar(data).items()
        }
        n = len(columns[f"{alias}.rowid"])
        whole = Batch(columns, n)
        morsels = [
            (start, min(start + BATCH_SIZE, n))
            for start in range(0, n, BATCH_SIZE)
        ]

        if kernel is None:
            def build(start: int, end: int) -> Batch:
                if start == 0 and end == n:
                    return whole
                return Batch(
                    {key: col[start:end] for key, col in columns.items()},
                    end - start,
                )
        else:
            def build(start: int, end: int) -> Batch:
                return whole.gather(
                    kernel.select(whole, range(start, end), binding)
                )

        pool = self._pool
        if pool is not None and len(morsels) > 1:
            results = pool.map_ordered(build, morsels)
        else:
            results = (build(start, end) for start, end in morsels)
        for (start, end), out in zip(morsels, results):
            charge((end - start) * per_row)
            yield out

    # -- filters and projection -------------------------------------------------

    def _vec_filter(self, plan: Filter, binding: Row) -> Iterator[Batch]:
        kernel = self._predicate(plan.conjuncts)
        extra = sum(
            self._catalog.function_cost(node.name)
            for c in plan.conjuncts
            for node in c.walk()
            if isinstance(node, ast.FuncCall)
        )
        return self._filter_batches(plan, kernel, extra, binding)

    def _filter_batches(self, plan: Filter,
                        kernel: Optional[PredicateKernel],
                        extra: float, binding: Row) -> Iterator[Batch]:
        cm = self._cm
        charge = self.stats.charge
        per_row = cm.predicate_eval * len(plan.conjuncts) + extra
        for batch in self.batches(plan.child, binding):
            charge(per_row * batch.length)
            if kernel is None:
                yield batch
                continue
            selected = kernel.select(batch, range(batch.length), binding)
            if len(selected) == batch.length:
                yield batch
            else:
                yield batch.gather(selected)

    def _vec_project(self, plan: Project, binding: Row) -> Iterator[Batch]:
        # plain column references alias the child's column list instead of
        # re-materialising it; everything else compiles to a value kernel
        sources: list[object] = []
        for item in plan.select_items:
            expr = item.expr
            if isinstance(expr, ast.ColumnRef) and expr.qualifier is not None:
                sources.append(f"{expr.qualifier}.{expr.name}")
            else:
                sources.append(self._value(expr))
        return self._project_batches(plan, sources, binding)

    def _project_batches(self, plan: Project, sources: list,
                         binding: Row) -> Iterator[Batch]:
        cm = self._cm
        charge = self.stats.charge
        width = len(sources)
        for batch in self.batches(plan.child, binding):
            n = batch.length
            charge(cm.pipeline_row * n)
            columns = dict(batch.columns)
            for i, source in enumerate(sources):
                if isinstance(source, str):
                    column = batch.columns.get(source)
                    if column is None:
                        column = [binding.get(source)] * n
                    columns[f"#out:{i}"] = column
                else:
                    columns[f"#out:{i}"] = source.evaluate(
                        batch, range(n), binding
                    )
            yield Batch(columns, n, width)

    # -- hash join --------------------------------------------------------------

    def _vec_hashjoin(self, plan: HashJoin, binding: Row) -> Iterator[Batch]:
        left_keys = [self._value(k) for k in plan.left_keys]
        right_keys = [self._value(k) for k in plan.right_keys]
        residual = self._predicate(plan.residual_conjuncts)
        return self._hashjoin_batches(
            plan, left_keys, right_keys, residual, binding
        )

    def _hashjoin_batches(self, plan: HashJoin,
                          left_keys: list[ValueKernel],
                          right_keys: list[ValueKernel],
                          residual: Optional[PredicateKernel],
                          binding: Row) -> Iterator[Batch]:
        cm = self._cm
        charge = self.stats.charge
        pair_cost = (
            cm.pipeline_row
            + cm.predicate_eval * len(plan.residual_conjuncts)
        )

        # build side (right), materialised as one batch
        build = vbatch.concat(list(self.batches(plan.right, binding)))
        n_build = build.length
        charge(cm.hash_row * n_build)
        key_columns = self._key_columns(build, right_keys, binding)
        table: dict[tuple, list[int]] = {}
        build_has_null_key = False
        for i in range(n_build):
            key = tuple(column[i] for column in key_columns)
            if any(v is None for v in key):
                build_has_null_key = True
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = [i]
            else:
                bucket.append(i)

        join_type = plan.join_type
        inner_like = join_type in ("INNER", "LEFT")
        for lbatch in self.batches(plan.left, binding):
            n = lbatch.length
            charge(cm.hash_row * n)
            probe_columns = self._key_columns(lbatch, left_keys, binding)
            if inner_like:
                out = self._hj_inner(
                    plan, lbatch, probe_columns, build, table,
                    residual, pair_cost, binding,
                )
            else:
                out = self._hj_semi(
                    plan, lbatch, probe_columns, build, table,
                    residual, pair_cost, binding, build_has_null_key,
                )
            if out is not None:
                yield out

    def _key_columns(self, batch: Batch, kernels: list[ValueKernel],
                     binding: Row) -> list[list]:
        """Evaluate join-key kernels over a whole batch (partition-
        parallel over morsel-sized index ranges when pooled)."""
        n = batch.length
        pool = self._pool
        if pool is None or n <= BATCH_SIZE or not kernels:
            indices = range(n)
            return [k.evaluate(batch, indices, binding) for k in kernels]
        ranges = [
            (start, min(start + BATCH_SIZE, n))
            for start in range(0, n, BATCH_SIZE)
        ]

        def extract(start: int, end: int) -> list[list]:
            indices = range(start, end)
            return [k.evaluate(batch, indices, binding) for k in kernels]

        columns: list[list] = [[] for _ in kernels]
        for part in pool.map_ordered(extract, ranges):
            for j, chunk in enumerate(part):
                columns[j].extend(chunk)
        return columns

    def _hj_inner(self, plan: HashJoin, lbatch: Batch,
                  probe_columns: list[list], build: Batch,
                  table: dict[tuple, list[int]],
                  residual: Optional[PredicateKernel], pair_cost: float,
                  binding: Row) -> Optional[Batch]:
        """INNER/LEFT probe for one left batch.  Emission order matches
        the row loop: per left row, its passing matches in build order,
        then (LEFT) the null-extended row when none passed."""
        charge = self.stats.charge
        n = lbatch.length
        cand_left: list[int] = []
        cand_right: list[int] = []
        empty: list[int] = []
        for i in range(n):
            key = tuple(column[i] for column in probe_columns)
            matches = (
                empty if any(v is None for v in key)
                else table.get(key, empty)
            )
            for j in matches:
                cand_left.append(i)
                cand_right.append(j)
        charge(pair_cost * len(cand_left))
        if residual is not None and cand_left:
            pair = self._pair_batch(
                residual.keys, lbatch, cand_left, build, cand_right, binding
            )
            selected = residual.select(pair, range(len(cand_left)), binding)
        else:
            selected = list(range(len(cand_left)))
        if plan.join_type == "INNER":
            if not selected:
                return None
            out_left = [cand_left[s] for s in selected]
            out_right = [cand_right[s] for s in selected]
        else:  # LEFT: weave null-extension rows into the left order
            out_left, out_right = [], []
            pos = 0
            n_selected = len(selected)
            for i in range(n):
                matched = False
                while pos < n_selected and cand_left[selected[pos]] == i:
                    out_left.append(i)
                    out_right.append(cand_right[selected[pos]])
                    matched = True
                    pos += 1
                if not matched:
                    out_left.append(i)
                    out_right.append(-1)
        return self._merged_batch(lbatch, out_left, build, out_right)

    def _hj_semi(self, plan: HashJoin, lbatch: Batch,
                 probe_columns: list[list], build: Batch,
                 table: dict[tuple, list[int]],
                 residual: Optional[PredicateKernel], pair_cost: float,
                 binding: Row, build_has_null_key: bool) -> Optional[Batch]:
        """SEMI/ANTI/ANTI_NA probe for one left batch.

        Residual candidates are costed round-by-round — every left row's
        first candidate, then the second for rows still unmatched, … —
        so the charges equal the row loop's evaluate-until-first-match
        ``break`` exactly.
        """
        charge = self.stats.charge
        n = lbatch.length
        matched = bytearray(n)
        key_null = bytearray(n)
        match_lists: list[Sequence[int]] = []
        empty: tuple = ()
        for i in range(n):
            key = tuple(column[i] for column in probe_columns)
            if any(v is None for v in key):
                key_null[i] = 1
                match_lists.append(empty)
            else:
                match_lists.append(table.get(key, empty))
        if residual is None:
            for i in range(n):
                if match_lists[i]:
                    charge(pair_cost)  # first candidate passes; row breaks
                    matched[i] = 1
        else:
            active = [i for i in range(n) if match_lists[i]]
            position = 0
            while active:
                cand_left = active
                cand_right = [match_lists[i][position] for i in active]
                charge(pair_cost * len(cand_left))
                pair = self._pair_batch(
                    residual.keys, lbatch, cand_left, build,
                    cand_right, binding,
                )
                for s in residual.select(
                    pair, range(len(cand_left)), binding
                ):
                    matched[cand_left[s]] = 1
                position += 1
                active = [
                    i for i in active
                    if not matched[i] and len(match_lists[i]) > position
                ]

        join_type = plan.join_type
        if join_type == "SEMI":
            keep = [i for i in range(n) if matched[i]]
        elif join_type == "ANTI":
            keep = [i for i in range(n) if not matched[i]]
        elif table or build_has_null_key:  # ANTI_NA, non-empty build
            keep = [
                i for i in range(n)
                if not (matched[i] or key_null[i] or build_has_null_key)
            ]
        else:  # ANTI_NA over an empty build side keeps every left row
            keep = list(range(n))
        if not keep:
            return None
        return lbatch.gather(keep)

    def _pair_batch(self, keys: list[str], lbatch: Batch,
                    left_indices: list[int], build: Batch,
                    right_indices: list[int], binding: Row) -> Batch:
        """Candidate-pair batch holding only the columns a residual
        kernel reads; ``-1`` right indices (null extension) read NULL."""
        columns: dict[str, list] = {}
        for key in keys:
            column = lbatch.columns.get(key)
            if column is not None:
                columns[key] = [column[i] for i in left_indices]
                continue
            column = build.columns.get(key)
            if column is not None:
                columns[key] = [
                    column[j] if j >= 0 else None for j in right_indices
                ]
        return Batch(columns, len(left_indices))

    def _merged_batch(self, lbatch: Batch, left_indices: list[int],
                      build: Batch, right_indices: list[int]) -> Batch:
        columns: dict[str, list] = {}
        for key, column in lbatch.columns.items():
            columns[key] = [column[i] for i in left_indices]
        for key, column in build.columns.items():
            columns[key] = [
                column[j] if j >= 0 else None for j in right_indices
            ]
        return Batch(columns, len(left_indices))

    # -- aggregation ------------------------------------------------------------

    def _vec_groupby(self, plan: GroupBy, binding: Row) -> Iterator[Batch]:
        if plan.grouping_sets is not None:
            raise NotVectorizable("grouping sets")
        key_kernels = [self._value(g) for g in plan.group_exprs]
        specs = []
        for call in plan.aggregates:
            is_star = bool(call.args) and isinstance(call.args[0], ast.Star)
            kernel = None if is_star else self._value(call.args[0])
            specs.append((call, kernel, is_star))
        return self._groupby_batches(plan, key_kernels, specs, binding)

    def _groupby_batches(self, plan: GroupBy,
                         key_kernels: list[ValueKernel], specs: list,
                         binding: Row) -> Iterator[Batch]:
        cm = self._cm
        charge = self.stats.charge
        per_row = cm.agg_row * max(len(specs), 1)
        #: key -> [rep_batch, rep_index, states]; insertion-ordered, so
        #: output order matches the row engine's first-seen order
        groups: dict[tuple, list] = {}
        pool = self._pool
        child = self.batches(plan.child, binding)
        if pool is not None:
            batches = list(child)

            def partial(batch: Batch) -> dict[tuple, list]:
                part: dict[tuple, list] = {}
                self._accumulate(
                    batch, part, key_kernels, specs, binding
                )
                return part

            partials = pool.map_ordered(
                partial, [(b,) for b in batches]
            )
            for batch, part in zip(batches, partials):
                charge(per_row * batch.length)
                self._merge_partial(groups, part, specs)
        else:
            for batch in child:
                charge(per_row * batch.length)
                self._accumulate(batch, groups, key_kernels, specs, binding)

        if not groups and not plan.group_exprs:
            # scalar aggregate over empty input: one all-NULL group
            row: Row = dict(binding)
            for call, _kernel, _star in specs:
                row[agg_key(call)] = Accumulator(
                    call.name, call.distinct
                ).result()
            charge(cm.pipeline_row)
            yield Batch.from_rows([row])
            return

        out_rows: list[Row] = []
        for rep_batch, rep_index, states in groups.values():
            row = rep_batch.row_view(rep_index, binding)
            for (call, _kernel, star), state in zip(specs, states):
                row[agg_key(call)] = _agg_finish(call.name, state)
            charge(cm.pipeline_row)
            out_rows.append(row)
            if len(out_rows) >= BATCH_SIZE:
                yield Batch.from_rows(out_rows)
                out_rows = []
        if out_rows:
            yield Batch.from_rows(out_rows)

    def _accumulate(self, batch: Batch, groups: dict,
                    key_kernels: list[ValueKernel], specs: list,
                    binding: Row) -> None:
        """Accumulate one batch into *groups* (pure w.r.t. run state, so
        morsel workers can build partials concurrently)."""
        n = batch.length
        indices = range(n)
        key_columns = [
            k.evaluate(batch, indices, binding) for k in key_kernels
        ]
        arg_columns = [
            None if kernel is None else kernel.evaluate(
                batch, indices, binding
            )
            for _call, kernel, _star in specs
        ]
        n_specs = len(specs)
        for i in indices:
            key = tuple(_hashable(column[i]) for column in key_columns)
            group = groups.get(key)
            if group is None:
                #: state per aggregate: [star_count, values, seen-or-None]
                states = [
                    [0, [], set() if call.distinct else None]
                    for call, _kernel, _star in specs
                ]
                group = [batch, i, states]
                groups[key] = group
            states = group[2]
            for j in range(n_specs):
                state = states[j]
                if specs[j][2]:
                    state[0] += 1
                    continue
                value = arg_columns[j][i]
                if value is None:
                    continue
                seen = state[2]
                if seen is not None:
                    if value in seen:
                        continue
                    seen.add(value)
                state[1].append(value)

    @staticmethod
    def _merge_partial(groups: dict, part: dict, specs: list) -> None:
        """Merge one batch's partial aggregates (driver thread, in batch
        order, so value order — and float summation — matches the
        sequential path)."""
        for key, group in part.items():
            into = groups.get(key)
            if into is None:
                groups[key] = group
                continue
            for state, pstate in zip(into[2], group[2]):
                state[0] += pstate[0]
                seen = state[2]
                if seen is None:
                    state[1].extend(pstate[1])
                    continue
                for value in pstate[1]:
                    if value not in seen:
                        seen.add(value)
                        state[1].append(value)

    # -- distinct / sort / set operations ----------------------------------------

    def _vec_distinct(self, plan: Plan, binding: Row) -> Iterator[Batch]:
        return self._distinct_batches(plan, binding)

    def _distinct_batches(self, plan: Plan, binding: Row) -> Iterator[Batch]:
        cm = self._cm
        charge = self.stats.charge
        seen: set[tuple] = set()
        for batch in self.batches(plan.child, binding):
            charge(cm.hash_row * batch.length)
            keep = []
            for i, values in enumerate(batch.output_tuples()):
                if values not in seen:
                    seen.add(values)
                    keep.append(i)
            if len(keep) == batch.length:
                yield batch
            else:
                yield batch.gather(keep)

    def _vec_sort(self, plan: Sort, binding: Row) -> Iterator[Batch]:
        kernels = [self._value(item.expr) for item in plan.order_by]
        return self._sort_batches(plan, kernels, binding)

    def _sort_batches(self, plan: Sort, kernels: list[ValueKernel],
                      binding: Row) -> Iterator[Batch]:
        cm = self._cm
        big = vbatch.concat(list(self.batches(plan.child, binding)))
        n = big.length
        self.stats.charge(cm.sort_cost(n))
        indices = list(range(n))
        # successive stable sorts, least-significant key first — the same
        # passes the row engine makes, so tie order is identical
        for kernel, item in reversed(list(zip(kernels, plan.order_by))):
            column = kernel.evaluate(big, range(n), binding)
            descending = item.descending
            indices.sort(
                key=lambda i, c=column, d=descending: _sort_key(c[i], d),
                reverse=descending,
            )
        for start in range(0, n, BATCH_SIZE):
            yield big.gather(indices[start:start + BATCH_SIZE])

    def _vec_setop(self, plan: SetOp, binding: Row) -> Iterator[Batch]:
        return self._setop_batches(plan, binding)

    def _setop_batches(self, plan: SetOp, binding: Row) -> Iterator[Batch]:
        cm = self._cm
        charge = self.stats.charge
        op = plan.op
        if op == "UNION ALL":
            for branch in plan.branches:
                for batch in self.batches(branch, binding):
                    values = batch.output_tuples()
                    charge(cm.pipeline_row * len(values))
                    yield _tuple_batch(values)
            return
        if op == "UNION":
            seen: set[tuple] = set()
            for branch in plan.branches:
                for batch in self.batches(branch, binding):
                    keep = []
                    for values in batch.output_tuples():
                        charge(cm.hash_row)
                        if values not in seen:
                            seen.add(values)
                            keep.append(values)
                    if keep:
                        yield _tuple_batch(keep)
            return
        left, right = plan.branches
        right_set: set[tuple] = set()
        for batch in self.batches(right, binding):
            right_set.update(batch.output_tuples())
        charge(cm.hash_row * len(right_set))
        seen = set()
        want = op == "INTERSECT"
        for batch in self.batches(left, binding):
            keep = []
            for values in batch.output_tuples():
                charge(cm.hash_row)
                if values in seen:
                    continue
                if (values in right_set) == want:
                    seen.add(values)
                    keep.append(values)
            if keep:
                yield _tuple_batch(keep)


def _agg_finish(name: str, state: list) -> object:
    """Finish one group's aggregate; mirrors ``Accumulator.result``."""
    star_count, values, _seen = state
    if name == "COUNT":
        return star_count if star_count else len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise ExecutionError(f"unknown aggregate {name!r}")


def _tuple_batch(values: list[tuple]) -> Batch:
    """A batch holding only the ``#out:i`` projection of *values*."""
    width = len(values[0])
    columns = {
        f"#out:{i}": [v[i] for v in values] for i in range(width)
    }
    return Batch(columns, len(values), width)
