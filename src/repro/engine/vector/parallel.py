"""Morsel-driven parallelism for the vectorized executor.

A :class:`MorselPool` wraps a ``ThreadPoolExecutor`` for the lifetime of
one statement execution.  Work is dispatched as *morsels* — kernel
evaluations over morsel-sized index ranges (scan selection, hash-join
build key extraction) or whole batches (group-by partial aggregation) —
and results are consumed strictly **in submission order** through a
bounded sliding window, so the driver thread can charge work units,
fire fault-injection points, poll cancellation tokens, and merge
partial aggregates deterministically, exactly as the sequential path
does.  Workers only ever run pure functions over immutable batches and
compiled kernels; no :class:`~repro.engine.executor.ExecStats` or fault
state is touched off the driver thread.

Early termination (a closed generator, a cancelled statement) cancels
every not-yet-started morsel; in-flight ones finish and are dropped.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Sequence

#: default worker count when ``REPRO_EXEC_WORKERS`` is unset
DEFAULT_WORKERS = 4


def worker_count() -> int:
    """Workers for parallel execution: ``REPRO_EXEC_WORKERS`` or a
    default capped by the machine's core count."""
    raw = os.environ.get("REPRO_EXEC_WORKERS", "").strip()
    if raw:
        return max(1, int(raw))
    return max(1, min(DEFAULT_WORKERS, os.cpu_count() or 1))


class MorselPool:
    """A statement-scoped worker pool with ordered result consumption."""

    def __init__(self, workers: int):
        self.workers = max(1, workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-morsel"
        )

    def map_ordered(
        self, fn: Callable, arg_tuples: Iterable[Sequence]
    ) -> Iterator:
        """Apply ``fn(*args)`` to every tuple, yielding results in
        submission order.  At most ``2 * workers`` morsels are in flight
        at once; abandoning the iterator cancels the rest."""
        pending = list(arg_tuples)
        window: deque[Future] = deque()
        limit = self.workers * 2
        index = 0
        try:
            while index < len(pending) or window:
                while index < len(pending) and len(window) < limit:
                    window.append(self._pool.submit(fn, *pending[index]))
                    index += 1
                yield window.popleft().result()
        finally:
            for future in window:
                future.cancel()

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
