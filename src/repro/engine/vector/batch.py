"""Columnar batches: the unit of work of the vectorized executor.

A :class:`Batch` holds ``length`` rows as a dict of parallel Python
lists keyed exactly like the row engine's dict rows (``"alias.column"``,
``"#out:i"``, ``"#agg:<sql>"`` …).  Keeping the key space identical makes
the row and batch engines losslessly interconvertible, which is what the
hybrid executor relies on: any operator the batch engine does not
implement natively runs on the row engine and its rows are re-chunked
into batches (and vice versa for fallback expression evaluation).

``width`` carries the row engine's ``#width`` pseudo-key (the output
arity a Project / SetOp established); it is ``None`` until projection.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..expressions import Row


class ConstColumn:
    """A virtual column holding one value for every row index.

    Used to bind missing batch columns (outer-binding keys, columns a
    sibling batch happened not to carry) into compiled kernels, which
    index columns positionally.
    """

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __getitem__(self, _index: int) -> object:
        return self.value


class Batch:
    """One chunk of rows in columnar layout."""

    __slots__ = ("columns", "length", "width")

    def __init__(
        self,
        columns: dict[str, list],
        length: int,
        width: Optional[int] = None,
    ):
        self.columns = columns
        self.length = length
        self.width = width

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Row]) -> "Batch":
        """Transpose dict rows into a batch.

        Key sets are unioned across the chunk (rows produced by outer
        joins or views can differ); a key missing from a row reads as
        NULL, matching ``row.get`` semantics in the row engine.
        """
        if not rows:
            return cls({}, 0)
        keys: set[str] = set()
        for row in rows:
            keys.update(row)
        width = None
        if "#width" in keys:
            keys.discard("#width")
            width = rows[0].get("#width")
        columns = {key: [row.get(key) for row in rows] for key in keys}
        return cls(columns, len(rows), width)

    # -- conversion -------------------------------------------------------------

    def row_view(self, index: int, base: Optional[Row] = None) -> Row:
        """Materialise one row as a dict (fallback expression paths)."""
        row: Row = dict(base) if base else {}
        for key, column in self.columns.items():
            row[key] = column[index]
        if self.width is not None:
            row["#width"] = self.width
        return row

    def to_rows(self, base: Optional[Row] = None) -> Iterator[Row]:
        for i in range(self.length):
            yield self.row_view(i, base)

    def output_tuples(self) -> list[tuple]:
        """The ``#out:i`` projection of every row, as tuples."""
        if self.width is None:
            from ...errors import ExecutionError

            raise ExecutionError(
                "top-level plan does not produce output rows"
            )
        if self.width == 0:
            return [() for _ in range(self.length)]
        out_columns = [
            self.columns.get(f"#out:{i}") or ConstColumn(None)
            for i in range(self.width)
        ]
        if self.width == 1:
            column = out_columns[0]
            return [(column[i],) for i in range(self.length)]
        materialised = [
            column if isinstance(column, list)
            else [column[i] for i in range(self.length)]
            for column in out_columns
        ]
        return list(zip(*materialised))

    # -- transforms -------------------------------------------------------------

    def gather(self, indices: Sequence[int]) -> "Batch":
        """A new batch holding the rows at *indices* (in that order)."""
        columns = {
            key: [column[i] for i in indices]
            for key, column in self.columns.items()
        }
        return Batch(columns, len(indices), self.width)

    def column(self, key: str, default: object = None):
        """The column for *key*, or a constant column of *default*."""
        got = self.columns.get(key)
        if got is None:
            return ConstColumn(default)
        return got


def concat(batches: Sequence[Batch]) -> Batch:
    """Concatenate batches into one (union of keys, NULL-filled)."""
    if not batches:
        return Batch({}, 0)
    if len(batches) == 1:
        return batches[0]
    keys: set[str] = set()
    width = batches[0].width
    total = 0
    for batch in batches:
        keys.update(batch.columns)
        total += batch.length
    columns: dict[str, list] = {}
    for key in keys:
        column: list = []
        for batch in batches:
            got = batch.columns.get(key)
            if got is None:
                column.extend([None] * batch.length)
            else:
                column.extend(got)
        columns[key] = column
    return Batch(columns, total, width)


def chunk_rows(rows: Iterable[Row], size: int) -> Iterator[Batch]:
    """Re-chunk a row stream (bridged operator output) into batches."""
    buffer: list[Row] = []
    append = buffer.append
    for row in rows:
        append(row)
        if len(buffer) >= size:
            yield Batch.from_rows(buffer)
            buffer = []
            append = buffer.append
    if buffer:
        yield Batch.from_rows(buffer)
