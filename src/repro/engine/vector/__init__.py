"""Vectorized (batch-at-a-time) plan execution.

The package implements the columnar half of the engine:

* :class:`~repro.engine.vector.batch.Batch` — a list-of-columns chunk of
  rows keyed exactly like the row engine's dict rows (``"alias.column"``),
  so the two engines interconvert losslessly;
* :mod:`~repro.engine.vector.kernels` — compilation of expression trees
  into Python source kernels applied once per batch (a filter's conjuncts
  fuse into a single loop) instead of once per row;
* :class:`~repro.engine.vector.executor.VectorExecutor` — batch-at-a-time
  operators for the hot path (table scan, filter, projection, hash join,
  hash aggregate, distinct, sort, set operations) that bridge every other
  operator to the untouched row engine, sharing one
  :class:`~repro.engine.executor.ExecStats`;
* :mod:`~repro.engine.vector.parallel` — morsel-driven parallelism: table
  scans split into morsels dispatched to a worker pool, with
  partition-parallel hash-join key extraction and partial-aggregate
  merging.

Work-unit accounting is charge-for-charge identical to the row executor
(same :class:`~repro.optimizer.costmodel.CostModel` constants per row),
so "estimated cost" and "measured work" keep one currency across engines
and the committed paper-figure baselines hold under either executor.
"""

from .batch import Batch
from .executor import BATCH_SIZE, VECTOR_OPERATORS, VectorExecutor
from .kernels import KernelCompiler, NotVectorizable

__all__ = [
    "Batch",
    "BATCH_SIZE",
    "KernelCompiler",
    "NotVectorizable",
    "VECTOR_OPERATORS",
    "VectorExecutor",
]
