"""Compilation of expression trees into per-batch Python kernels.

The row engine compiles an expression to a closure called once per row;
per-row cost is dominated by Python call overhead and dict lookups.  The
vector engine instead generates Python *source* for a loop over a batch:
a filter's conjuncts fuse into a single ``for`` body of local-variable
loads and inline three-valued-logic tests, compiled once per statement
with :func:`compile`/``exec`` and applied to whole batches.

Two source modes exist per expression:

* **value** — the SQL value (``None`` for NULL), used by projections,
  join keys, and aggregate arguments;
* **truth** — a Python ``bool`` that is ``True`` exactly when the SQL
  value is TRUE (WHERE semantics), used by fused predicates.  Truth mode
  skips materialising UNKNOWN: ``a > b`` becomes
  ``(t0 := a) is not None and (t1 := b) is not None and t0 > t1``.

Kernels reference columns positionally; batch columns are resolved at
call time (missing keys bind as constant columns from the outer binding,
mirroring ``row.get``).  Expressions the generator cannot handle —
subqueries, GROUPING, non-literal LIKE patterns — raise
:class:`NotVectorizable`; callers fall back to the row engine's
closures over per-row views.

Walrus-assignment temporaries are only referenced behind short-circuit
guards that guarantee assignment, so generated conditionals never read
an unbound name.
"""

from __future__ import annotations

import re
from typing import Callable, Optional, Sequence

from ...errors import ExecutionError
from ..expressions import FunctionRegistry, agg_key, window_key

from ...sql import ast


class NotVectorizable(Exception):  # staticcheck: allow-raise
    """The expression cannot be compiled to a batch kernel.

    Internal control flow, never surfaced: every raise is caught by the
    kernel compiler or the vector executor's row-engine bridge — hence
    deliberately *not* a ReproError (a typed-error net must never cost
    away or report what is simply "use the row engine here")."""


#: literal types inlined into source as ``repr`` constants
_INLINE_LITERALS = (int, float, str, bool, type(None))

_COMPARISON_SOURCE = {
    "=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

_ARITHMETIC = {"+", "-", "*", "/", "%"}


def _between_value(v, lo, hi, negated):
    """Row-engine BETWEEN semantics for value-mode kernels."""
    lo_ok = None if v is None or lo is None else v >= lo
    hi_ok = None if v is None or hi is None else v <= hi
    if lo_ok is False or hi_ok is False:
        result: object = False
    elif lo_ok is None or hi_ok is None:
        return None
    else:
        result = True
    return (not result) if negated else result


class _Kernel:
    """A compiled batch kernel: generated function + column bindings."""

    __slots__ = ("fn", "keys")

    def __init__(self, fn: Callable, keys: list[str]):
        self.fn = fn
        self.keys = keys

    def _columns(self, batch, binding: Optional[dict]):
        from .batch import ConstColumn

        columns = batch.columns
        resolved = []
        for key in self.keys:
            column = columns.get(key)
            if column is None:
                value = binding.get(key) if binding else None
                column = ConstColumn(value)
            resolved.append(column)
        return resolved

    def _run(self, indices, append, columns):
        try:
            self.fn(indices, append, *columns)
        except ZeroDivisionError:
            raise ExecutionError("division by zero") from None
        except TypeError as exc:
            raise ExecutionError(
                f"type error in vectorized expression: {exc}"
            ) from exc


class PredicateKernel(_Kernel):
    """Fused conjuncts; selects the passing row indices of a batch."""

    def select(
        self, batch, indices: Sequence[int], binding: Optional[dict] = None
    ) -> list[int]:
        out: list[int] = []
        self._run(indices, out.append, self._columns(batch, binding))
        return out


class ValueKernel(_Kernel):
    """One expression in value mode; evaluates over selected indices."""

    def evaluate(
        self, batch, indices: Sequence[int], binding: Optional[dict] = None
    ) -> list:
        out: list = []
        self._run(indices, out.append, self._columns(batch, binding))
        return out


class KernelCompiler:
    """Generates and compiles batch kernels for expression trees."""

    def __init__(
        self,
        functions: FunctionRegistry,
        binds: Optional[dict] = None,
    ):
        self._functions = functions
        self._binds = binds or {}
        # per-kernel state, reset by _generate
        self._columns: dict[str, str] = {}
        self._consts: list[tuple[str, object]] = []
        self._temps = 0

    # -- public API -------------------------------------------------------------

    def predicate(self, conjuncts: Sequence[ast.Expr]) -> Optional[PredicateKernel]:
        """Fuse *conjuncts* into one selection kernel, or ``None`` when
        any conjunct is not vectorizable (callers then evaluate **all**
        conjuncts on the row path to preserve evaluation order)."""
        try:
            return self._generate(
                lambda: [self._truth(c) for c in conjuncts],
                self._emit_predicate,
                PredicateKernel,
            )
        except NotVectorizable:
            return None

    def values(self, expr: ast.Expr) -> Optional[ValueKernel]:
        """A value-mode kernel for *expr*, or ``None`` when not
        vectorizable."""
        try:
            return self._generate(
                lambda: [self._value(expr)], self._emit_values, ValueKernel
            )
        except NotVectorizable:
            return None

    # -- code generation --------------------------------------------------------

    def _generate(self, fragments, emit, kernel_cls):
        self._columns = {}
        self._consts = []
        self._temps = 0
        body_fragments = fragments()
        column_keys = list(self._columns)
        params = ["idx", "append"]
        params.extend(self._columns[key] for key in column_keys)
        namespace: dict[str, object] = {}
        for name, value in self._consts:
            params.append(f"{name}=_g{name}")
            namespace[f"_g{name}"] = value
        source = emit(params, body_fragments)
        code = compile(source, "<vector-kernel>", "exec")
        exec(code, namespace)  # noqa: S102 - generated from our own AST
        return kernel_cls(namespace["_kernel"], column_keys)

    @staticmethod
    def _emit_predicate(params: list[str], truths: list[str]) -> str:
        lines = [f"def _kernel({', '.join(params)}):"]
        lines.append("    for i in idx:")
        for truth in truths:
            lines.append(f"        if not ({truth}): continue")
        lines.append("        append(i)")
        return "\n".join(lines)

    @staticmethod
    def _emit_values(params: list[str], values: list[str]) -> str:
        (value,) = values
        return (
            f"def _kernel({', '.join(params)}):\n"
            f"    for i in idx:\n"
            f"        append({value})\n"
        )

    # -- fragment helpers -------------------------------------------------------

    def _temp(self) -> str:
        self._temps += 1
        return f"t{self._temps}"

    def _column(self, key: str) -> str:
        name = self._columns.get(key)
        if name is None:
            name = f"c{len(self._columns)}"
            self._columns[key] = name
        return f"{name}[i]"

    def _const(self, value: object) -> str:
        name = f"k{len(self._consts)}"
        self._consts.append((name, value))
        return name

    # -- value mode -------------------------------------------------------------

    def _value(self, expr: ast.Expr) -> str:
        method = getattr(self, f"_value_{type(expr).__name__.lower()}", None)
        if method is None:
            if isinstance(expr, ast.ColumnRef):
                return self._value_columnref(expr)
            raise NotVectorizable(type(expr).__name__)
        return method(expr)

    def _value_columnref(self, expr: ast.ColumnRef) -> str:
        if expr.qualifier is None:
            raise ExecutionError(f"unresolved column reference {expr.name!r}")
        return self._column(f"{expr.qualifier}.{expr.name}")

    def _value_literal(self, expr: ast.Literal) -> str:
        if isinstance(expr.value, _INLINE_LITERALS):
            return repr(expr.value)
        return self._const(expr.value)

    def _value_bindparam(self, expr: ast.BindParam) -> str:
        try:
            return self._const(self._binds[expr.key])
        except KeyError:
            raise ExecutionError(
                f"no value bound for parameter :{expr.key}"
            ) from None

    def _value_binop(self, expr: ast.BinOp) -> str:
        a, b = self._value(expr.left), self._value(expr.right)
        ta, tb = self._temp(), self._temp()
        op = expr.op
        if op in _COMPARISON_SOURCE:
            py = _COMPARISON_SOURCE[op]
            return (
                f"(None if ({ta} := {a}) is None or ({tb} := {b}) is None"
                f" else {ta} {py} {tb})"
            )
        if op == "||":
            return (
                f"(None if ({ta} := {a}) is None or ({tb} := {b}) is None"
                f" else str({ta}) + str({tb}))"
            )
        if op in _ARITHMETIC:
            return (
                f"(None if ({ta} := {a}) is None or ({tb} := {b}) is None"
                f" else {ta} {op} {tb})"
            )
        raise NotVectorizable(f"operator {op!r}")

    def _value_and(self, expr: ast.And) -> str:
        temps, sources = [], []
        for operand in expr.operands:
            source = self._value(operand)
            temp = self._temp()
            temps.append(temp)
            sources.append(f"({temp} := {source}) is False")
        false_test = " or ".join(sources)
        null_test = " or ".join(f"{t} is None" for t in temps)
        return (
            f"(False if ({false_test})"
            f" else (None if ({null_test}) else True))"
        )

    def _value_or(self, expr: ast.Or) -> str:
        temps, sources = [], []
        for operand in expr.operands:
            source = self._value(operand)
            temp = self._temp()
            temps.append(temp)
            sources.append(f"({temp} := {source}) is True")
        true_test = " or ".join(sources)
        null_test = " or ".join(f"{t} is None" for t in temps)
        return (
            f"(True if ({true_test})"
            f" else (None if ({null_test}) else False))"
        )

    def _value_not(self, expr: ast.Not) -> str:
        t = self._temp()
        return f"(None if ({t} := {self._value(expr.operand)}) is None else not {t})"

    def _value_isnull(self, expr: ast.IsNull) -> str:
        test = "is not None" if expr.negated else "is None"
        return f"(({self._value(expr.operand)}) {test})"

    def _value_between(self, expr: ast.Between) -> str:
        helper = self._const(_between_value)
        v = self._value(expr.operand)
        lo = self._value(expr.low)
        hi = self._value(expr.high)
        return f"({helper}({v}, {lo}, {hi}, {expr.negated!r}))"

    def _value_inlist(self, expr: ast.InList) -> str:
        items, has_null = self._inlist_items(expr)
        s = self._const(items)
        tv = self._temp()
        v = self._value(expr.operand)
        if not expr.negated:
            if has_null:
                return (
                    f"(None if ({tv} := {v}) is None"
                    f" else (True if {tv} in {s} else None))"
                )
            return f"(None if ({tv} := {v}) is None else {tv} in {s})"
        if has_null:
            return (
                f"(False if ({tv} := {v}) is not None and {tv} in {s}"
                f" else None)"
            )
        return f"(None if ({tv} := {v}) is None else {tv} not in {s})"

    def _value_like(self, expr: ast.Like) -> str:
        regex = self._like_regex(expr)
        r = self._const(regex)
        tv = self._temp()
        verdict = f"bool({r}.match(str({tv})))"
        if expr.negated:
            verdict = f"not {verdict}"
        return f"(None if ({tv} := {self._value(expr.operand)}) is None else {verdict})"

    def _value_rowexpr(self, expr: ast.RowExpr) -> str:
        items = ", ".join(self._value(item) for item in expr.items)
        return f"({items},)" if expr.items else "()"

    def _value_case(self, expr: ast.Case) -> str:
        default = (
            self._value(expr.default) if expr.default is not None else "None"
        )
        source = default
        for condition, result in reversed(expr.whens):
            truth = self._truth(condition)
            value = self._value(result)
            source = f"({value} if ({truth}) else {source})"
        return source

    def _value_funccall(self, expr: ast.FuncCall) -> str:
        if expr.is_aggregate:
            return self._column(agg_key(expr))
        if expr.name == "GROUPING":
            raise NotVectorizable("GROUPING")
        fn = self._functions.get(expr.name)
        f = self._const(fn)
        args = ", ".join(self._value(arg) for arg in expr.args)
        return f"({f}({args}))"

    def _value_windowfunc(self, expr: ast.WindowFunc) -> str:
        return self._column(window_key(expr))

    # -- truth mode -------------------------------------------------------------

    def _truth(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.BinOp) and expr.op in _COMPARISON_SOURCE:
            a, b = self._value(expr.left), self._value(expr.right)
            ta, tb = self._temp(), self._temp()
            py = _COMPARISON_SOURCE[expr.op]
            return (
                f"(({ta} := {a}) is not None and ({tb} := {b}) is not None"
                f" and {ta} {py} {tb})"
            )
        if isinstance(expr, ast.And):
            return " and ".join(
                f"({self._truth(op)})" for op in expr.operands
            )
        if isinstance(expr, ast.Or):
            return " or ".join(
                f"({self._truth(op)})" for op in expr.operands
            )
        if isinstance(expr, ast.Not):
            t = self._temp()
            return f"(({t} := {self._value(expr.operand)}) is False)"
        if isinstance(expr, ast.IsNull):
            return self._value_isnull(expr)
        if isinstance(expr, ast.Between):
            return self._truth_between(expr)
        if isinstance(expr, ast.InList):
            return self._truth_inlist(expr)
        return f"(({self._value(expr)}) is True)"

    def _truth_between(self, expr: ast.Between) -> str:
        tv, tl, th = self._temp(), self._temp(), self._temp()
        v = self._value(expr.operand)
        lo = self._value(expr.low)
        hi = self._value(expr.high)
        if not expr.negated:
            return (
                f"(({tv} := {v}) is not None and ({tl} := {lo}) is not None"
                f" and {tv} >= {tl} and ({th} := {hi}) is not None"
                f" and {tv} <= {th})"
            )
        return (
            f"(({tv} := {v}) is not None"
            f" and ((({tl} := {lo}) is not None and {tv} < {tl})"
            f" or (({th} := {hi}) is not None and {tv} > {th})))"
        )

    def _truth_inlist(self, expr: ast.InList) -> str:
        items, has_null = self._inlist_items(expr)
        tv = self._temp()
        v = self._value(expr.operand)
        if not expr.negated:
            s = self._const(items)
            return f"(({tv} := {v}) is not None and {tv} in {s})"
        if has_null:
            # NOT IN with a NULL item is never TRUE
            return "(False)"
        s = self._const(items)
        return f"(({tv} := {v}) is not None and {tv} not in {s})"

    # -- shared helpers ---------------------------------------------------------

    @staticmethod
    def _inlist_items(expr: ast.InList) -> tuple[frozenset, bool]:
        values = []
        has_null = False
        for item in expr.items:
            if not isinstance(item, ast.Literal):
                raise NotVectorizable("non-literal IN list")
            if item.value is None:
                has_null = True
            else:
                values.append(item.value)
        try:
            return frozenset(values), has_null
        except TypeError:
            raise NotVectorizable("unhashable IN list") from None

    @staticmethod
    def _like_regex(expr: ast.Like) -> "re.Pattern":
        if not isinstance(expr.pattern, ast.Literal) or not isinstance(
            expr.pattern.value, str
        ):
            raise NotVectorizable("non-literal LIKE pattern")
        pattern = expr.pattern.value
        return re.compile(
            "^"
            + re.escape(pattern).replace("%", ".*").replace("_", ".")
            + "$",
            re.DOTALL,
        )
