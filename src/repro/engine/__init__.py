"""Execution engine: storage, expression compilation, plan executor, and
the reference evaluator used as a semantics oracle."""

from .executor import ExecStats, Executor
from .expressions import ExpressionCompiler, FunctionRegistry
from .reference import ReferenceEvaluator
from .tables import Storage, TableData

__all__ = [
    "ExecStats",
    "Executor",
    "ExpressionCompiler",
    "FunctionRegistry",
    "ReferenceEvaluator",
    "Storage",
    "TableData",
]
