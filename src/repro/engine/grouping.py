"""Group-by evaluation shared by the reference evaluator and the plan
executor, including ROLLUP / CUBE / GROUPING SETS semantics.

For each grouping set, input rows are hashed on that set's key columns;
output rows carry the aggregate results (under
:func:`~repro.engine.expressions.agg_key`), NULL for every rolled-up
grouping column, and the GROUPING(col) indicators (under
:func:`~repro.engine.expressions.grouping_key`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..sql import ast
from .expressions import Accumulator, Row, agg_key, grouping_key

#: an aggregate to compute: (call, compiled-arg-or-None, is_count_star)
AggSpec = tuple[ast.FuncCall, Optional[Callable[[Row], object]], bool]


class _NullKey:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance


def _hashable(value: object) -> object:
    return _NullKey() if value is None else value


def evaluate_group_by(
    rows: Sequence[Row],
    group_exprs: Sequence[ast.Expr],
    group_fns: Sequence[Callable[[Row], object]],
    grouping_sets: Optional[Sequence[Sequence[int]]],
    agg_specs: Sequence[AggSpec],
    on_row: Optional[Callable[[], None]] = None,
    empty_base: Optional[Row] = None,
) -> list[Row]:
    """Compute grouped output rows.

    *on_row* is called once per (row, set) accumulation step — the
    executor uses it for work accounting.
    """
    sets: list[list[int]] = (
        [list(s) for s in grouping_sets]
        if grouping_sets is not None
        else [list(range(len(group_exprs)))]
    )

    output: list[Row] = []
    for set_indices in sets:
        set_fns = [group_fns[i] for i in set_indices]
        groups: dict[tuple, dict] = {}
        order: list[tuple] = []
        for row in rows:
            if on_row is not None:
                on_row()
            key = tuple(_hashable(fn(row)) for fn in set_fns)
            group = groups.get(key)
            if group is None:
                group = {
                    "row": row,
                    "accs": [
                        Accumulator(call.name, call.distinct)
                        for call, _fn, _star in agg_specs
                    ],
                }
                groups[key] = group
                order.append(key)
            for acc, (call, arg_fn, is_star) in zip(group["accs"], agg_specs):
                if is_star:
                    acc.add_star()
                else:
                    acc.add(arg_fn(row))

        if not groups and not set_indices and grouping_sets is None \
                and not group_exprs:
            # scalar aggregate over empty input: one all-NULL group
            empty: Row = dict(empty_base or {})
            for call, _fn, _star in agg_specs:
                empty[agg_key(call)] = Accumulator(
                    call.name, call.distinct
                ).result()
            output.append(empty)
            continue
        if not groups and grouping_sets is not None and not set_indices:
            # a grand-total set over empty input still yields one row
            empty = dict(empty_base or {})
            for call, _fn, _star in agg_specs:
                empty[agg_key(call)] = Accumulator(
                    call.name, call.distinct
                ).result()
            _mark_rollup(empty, group_exprs, set_indices)
            output.append(empty)
            continue

        for key in order:
            group = groups[key]
            row = dict(group["row"])
            for acc, (call, _fn, _star) in zip(group["accs"], agg_specs):
                row[agg_key(call)] = acc.result()
            if grouping_sets is not None:
                _mark_rollup(row, group_exprs, set_indices)
            output.append(row)
    return output


def _mark_rollup(
    row: Row, group_exprs: Sequence[ast.Expr], set_indices: Sequence[int]
) -> None:
    """NULL out rolled-up grouping columns and set GROUPING indicators."""
    kept = set(set_indices)
    for i, expr in enumerate(group_exprs):
        assert isinstance(expr, ast.ColumnRef)
        row[grouping_key(expr)] = 0 if i in kept else 1
        if i not in kept:
            row[f"{expr.qualifier}.{expr.name}"] = None