"""Window-function computation shared by the reference evaluator and the
plan executor.

Supports AVG/SUM/COUNT/MIN/MAX with whole-partition or UNBOUNDED
PRECEDING..CURRENT ROW frames (ROWS and RANGE; RANGE includes peers of
the current row), plus ROW_NUMBER and RANK.  Results are written into the
row dicts under :func:`~repro.engine.expressions.window_key`.
"""

from __future__ import annotations

from typing import Callable

from ..errors import UnsupportedError
from ..sql import ast
from .expressions import Accumulator, ExpressionCompiler, Row, window_key


def compute_window(
    window: ast.WindowFunc,
    rows: list[Row],
    compiler: ExpressionCompiler,
    sort_key: Callable[[object, bool], object],
) -> None:
    """Compute *window* over *rows* in place."""
    key = window_key(window)
    part_fns = [compiler.compile(e) for e in window.partition_by]
    order_fns = [compiler.compile(o.expr) for o in window.order_by]
    name = window.func.name

    partitions: dict[tuple, list[Row]] = {}
    for row in rows:
        pkey = tuple(_hashable(fn(row)) for fn in part_fns)
        partitions.setdefault(pkey, []).append(row)

    for partition in partitions.values():
        if order_fns:
            ordered = sorted(
                partition,
                key=lambda row: tuple(
                    sort_key(fn(row), item.descending)
                    for fn, item in zip(order_fns, window.order_by)
                ),
            )
        else:
            ordered = list(partition)
        _fill_partition(window, name, key, ordered, order_fns, compiler)


def _fill_partition(
    window: ast.WindowFunc,
    name: str,
    key: str,
    ordered: list[Row],
    order_fns: list,
    compiler: ExpressionCompiler,
) -> None:
    if name == "ROW_NUMBER":
        for i, row in enumerate(ordered):
            row[key] = i + 1
        return
    if name == "RANK":
        previous = None
        rank = 0
        for i, row in enumerate(ordered):
            values = tuple(fn(row) for fn in order_fns)
            if values != previous:
                rank = i + 1
                previous = values
            row[key] = rank
        return

    arg_fn = (
        compiler.compile(window.func.args[0])
        if window.func.args and not isinstance(window.func.args[0], ast.Star)
        else None
    )
    whole_partition = not window.order_by or (
        window.frame is not None
        and window.frame.start == "UNBOUNDED PRECEDING"
        and window.frame.end == "UNBOUNDED FOLLOWING"
    )
    running = window.frame is None or (
        window.frame.start == "UNBOUNDED PRECEDING"
        and window.frame.end == "CURRENT ROW"
    )
    if whole_partition:
        acc = Accumulator(name, window.func.distinct)
        for row in ordered:
            _accumulate(acc, arg_fn, row)
        value = acc.result()
        for row in ordered:
            row[key] = value
    elif running:
        is_range = window.frame is None or window.frame.kind == "RANGE"
        acc = Accumulator(name, window.func.distinct)
        i = 0
        n = len(ordered)
        while i < n:
            j = i
            if is_range and order_fns:
                current = tuple(fn(ordered[i]) for fn in order_fns)
                while j + 1 < n and tuple(
                    fn(ordered[j + 1]) for fn in order_fns
                ) == current:
                    j += 1
            for k in range(i, j + 1):
                _accumulate(acc, arg_fn, ordered[k])
            value = acc.result()
            for k in range(i, j + 1):
                ordered[k][key] = value
            i = j + 1
    else:
        raise UnsupportedError(
            "only UNBOUNDED PRECEDING..CURRENT ROW and whole-partition "
            "window frames are supported"
        )


def _accumulate(acc: Accumulator, arg_fn, row: Row) -> None:
    if arg_fn is None:
        acc.add_star()
    else:
        acc.add(arg_fn(row))


class _NullKey:
    """Hashable stand-in for NULL partition keys."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance


def _hashable(value: object) -> object:
    return _NullKey() if value is None else value
