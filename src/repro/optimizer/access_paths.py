"""Access-path generation for one from-item.

For a base table this produces the full-table scan plus every usable
index path: equality binds on a prefix of the index columns, optionally a
range bound on the following column, residual conjuncts applied post
fetch.

Bind expressions may reference *other* aliases, making the path
*parameterised*:

* references to other from-items of the same block — the path is only
  usable as the inner of an index nested-loop join, after those aliases
  are bound (the join-order enumerator checks
  :meth:`~repro.optimizer.plans.IndexScan.outer_aliases`);
* references to aliases outside the block entirely — correlation binds;
  they behave as runtime parameters, which is precisely how a correlated
  subquery evaluated under tuple-iteration semantics gets indexed access
  on "the local column in the correlation predicate" (§2.2.1).

A full table scan, by contrast, may only evaluate conjuncts whose
block-local references are confined to the scanned alias.
"""

from __future__ import annotations

from typing import Optional

from ..catalog.schema import TableDef
from ..catalog.statistics import TableStats
from ..qtree import exprutil
from ..sql import ast
from .costmodel import CostModel
from .plans import IndexScan, Plan, TableScan
from .selectivity import StatsContext, conjuncts_selectivity

_RANGE_OPS = ("<", "<=", ">", ">=")


def base_table_paths(
    alias: str,
    table: TableDef,
    table_stats: Optional[TableStats],
    conjuncts: list[ast.Expr],
    local_aliases: set[str],
    stats: StatsContext,
    cost_model: CostModel,
) -> list[Plan]:
    """All access paths for a base-table from-item.

    *conjuncts* are the block's conjuncts that mention this alias;
    *local_aliases* are all from-item aliases of the block (used to tell
    sibling references from outer-block correlation parameters).
    """
    row_count = float(table_stats.row_count) if table_stats else 1000.0
    truly_local = [
        c for c in conjuncts if _is_local(c, alias, local_aliases)
    ]
    paths: list[Plan] = [
        _full_scan(alias, table, row_count, truly_local, stats, cost_model)
    ]
    bindable = [c for c in conjuncts if not ast.contains_subquery(c)]
    eq_binds, range_binds = _classify(alias, bindable)
    for index in table.indexes:
        path = _index_path(
            alias, table, index, row_count, eq_binds, range_binds,
            truly_local, stats, cost_model,
        )
        if path is not None:
            paths.append(path)
    return paths


def _is_local(conjunct: ast.Expr, alias: str, local_aliases: set[str]) -> bool:
    if ast.contains_subquery(conjunct):
        return False
    refs = exprutil.aliases_referenced(conjunct) & local_aliases
    return refs <= {alias}


def _full_scan(
    alias: str,
    table: TableDef,
    row_count: float,
    local_conjuncts: list[ast.Expr],
    stats: StatsContext,
    cost_model: CostModel,
) -> TableScan:
    selectivity = conjuncts_selectivity(local_conjuncts, stats)
    cost = row_count * (
        cost_model.scan_row + cost_model.predicate_eval * len(local_conjuncts)
    )
    return TableScan(
        alias, table.name, local_conjuncts, cost,
        max(row_count * selectivity, 0.0),
    )


def _classify(alias: str, conjuncts: list[ast.Expr]):
    """Split bindable conjuncts into equality binds (column -> expr) and
    range binds (column -> (op, expr, conjunct))."""
    eq_binds: dict[str, tuple[ast.Expr, ast.Expr]] = {}
    range_binds: dict[str, tuple[str, ast.Expr, ast.Expr]] = {}
    for conjunct in conjuncts:
        bound = _bind_of(alias, conjunct)
        if bound is None:
            continue
        column, op, expr = bound
        if op == "=" and column not in eq_binds:
            eq_binds[column] = (expr, conjunct)
        elif op in _RANGE_OPS and column not in range_binds:
            range_binds[column] = (op, expr, conjunct)
    return eq_binds, range_binds


def _bind_of(alias: str, conjunct: ast.Expr) -> Optional[tuple[str, str, ast.Expr]]:
    """Match ``alias.col <op> expr`` where expr does not reference alias."""
    if not isinstance(conjunct, ast.BinOp) or not conjunct.is_comparison:
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if isinstance(right, ast.ColumnRef) and right.qualifier == alias and not (
        isinstance(left, ast.ColumnRef) and left.qualifier == alias
    ):
        left, right = right, left
        op = ast.MIRRORED_COMPARISON[op]
    if not (isinstance(left, ast.ColumnRef) and left.qualifier == alias):
        return None
    if alias in exprutil.aliases_referenced(right):
        return None
    return left.name, op, right


def _index_path(
    alias: str,
    table: TableDef,
    index,
    row_count: float,
    eq_binds: dict[str, tuple[ast.Expr, ast.Expr]],
    range_binds: dict[str, tuple[str, ast.Expr, ast.Expr]],
    truly_local: list[ast.Expr],
    stats: StatsContext,
    cost_model: CostModel,
) -> Optional[IndexScan]:
    used_eq: list[tuple[str, ast.Expr]] = []
    covered_conjuncts: list[ast.Expr] = []
    range_bind: Optional[tuple[str, str, ast.Expr]] = None
    for column in index.columns:
        if column in eq_binds:
            expr, conjunct = eq_binds[column]
            used_eq.append((column, expr))
            covered_conjuncts.append(conjunct)
            continue
        if column in range_binds:
            op, expr, conjunct = range_binds[column]
            range_bind = (column, op, expr)
            covered_conjuncts.append(conjunct)
        break
    if not used_eq and range_bind is None:
        return None

    index_selectivity = conjuncts_selectivity(covered_conjuncts, stats)
    matched = max(row_count * index_selectivity, 0.0)

    covered_ids = {id(c) for c in covered_conjuncts}
    post = [c for c in truly_local if id(c) not in covered_ids]
    post_selectivity = conjuncts_selectivity(post, stats)

    cost = (
        cost_model.index_probe
        + matched * cost_model.index_row
        + matched * cost_model.predicate_eval * len(post)
    )
    return IndexScan(
        alias,
        table.name,
        index,
        used_eq,
        range_bind,
        post,
        cost,
        max(matched * post_selectivity, 0.0),
        covered_conjuncts=covered_conjuncts,
    )
