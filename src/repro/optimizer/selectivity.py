"""Selectivity estimation for predicates.

Estimates the fraction of rows that survive a conjunct, using column
statistics and histograms where available and System-R default constants
otherwise.  The estimator is deliberately in the classic mold — equality
``1/NDV``, independence across conjuncts — so it exhibits the same
mis-estimation modes the paper attributes degraded queries to (§4.2:
"performance degradation ... is typically due to cost mis-estimation").
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..catalog.statistics import (
    ColumnStats,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_LIKE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    TableStats,
)
from ..sql import ast


class StatsContext(Protocol):
    """Where the estimator finds statistics for an alias.column."""

    def column_stats(self, alias: str, column: str) -> Optional[ColumnStats]: ...

    def table_stats(self, alias: str) -> Optional[TableStats]: ...


def conjunct_selectivity(conjunct: ast.Expr, stats: StatsContext) -> float:
    """Selectivity of one conjunct (0 < s <= 1)."""
    sel = _estimate(conjunct, stats)
    return min(1.0, max(1e-6, sel))


def conjuncts_selectivity(conjuncts: list[ast.Expr], stats: StatsContext) -> float:
    """Combined selectivity under the independence assumption."""
    sel = 1.0
    for conjunct in conjuncts:
        sel *= conjunct_selectivity(conjunct, stats)
    return sel


def _estimate(expr: ast.Expr, stats: StatsContext) -> float:
    if isinstance(expr, ast.BinOp) and expr.is_comparison:
        return _comparison_selectivity(expr, stats)
    if isinstance(expr, ast.And):
        sel = 1.0
        for op in expr.operands:
            sel *= _estimate(op, stats)
        return sel
    if isinstance(expr, ast.Or):
        sel = 0.0
        for op in expr.operands:
            s = _estimate(op, stats)
            sel = sel + s - sel * s
        return sel
    if isinstance(expr, ast.Not):
        return 1.0 - _estimate(expr.operand, stats)
    if isinstance(expr, ast.IsNull):
        return _null_selectivity(expr, stats)
    if isinstance(expr, ast.Between):
        return _between_selectivity(expr, stats)
    if isinstance(expr, ast.Like):
        sel = DEFAULT_LIKE_SELECTIVITY
        return 1.0 - sel if expr.negated else sel
    if isinstance(expr, ast.InList):
        return _in_list_selectivity(expr, stats)
    if isinstance(expr, ast.SubqueryExpr):
        return _subquery_selectivity(expr)
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return 1.0
        return 0.0
    return 0.5


def _constant_value(expr: ast.Expr) -> tuple[object, bool]:
    """Value of a literal, or of a bind variable whose value was peeked at
    optimization time (bind peeking) — ``(value, known)``."""
    if isinstance(expr, ast.Literal):
        return expr.value, True
    if isinstance(expr, ast.BindParam) and expr.has_peek:
        return expr.peeked, True
    return None, False


def _column_and_literal(
    expr: ast.BinOp,
) -> Optional[tuple[ast.ColumnRef, object, str]]:
    """Match ``col <op> constant`` in either orientation, where a constant
    is a literal or a peeked bind variable."""
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, ast.ColumnRef):
        value, known = _constant_value(right)
        if known:
            return left, value, op
    if isinstance(right, ast.ColumnRef):
        value, known = _constant_value(left)
        if known:
            return right, value, ast.MIRRORED_COMPARISON[op]
    return None


def _comparison_selectivity(expr: ast.BinOp, stats: StatsContext) -> float:
    matched = _column_and_literal(expr)
    if matched is not None:
        column, value, op = matched
        return _column_vs_literal(column, value, op, stats)
    if isinstance(expr.left, ast.ColumnRef) and isinstance(expr.right, ast.ColumnRef):
        return _column_vs_column(expr, stats)
    if expr.op == "=":
        return DEFAULT_EQ_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def _column_vs_literal(
    column: ast.ColumnRef, value: object, op: str, stats: StatsContext
) -> float:
    col_stats = (
        stats.column_stats(column.qualifier, column.name) if column.qualifier else None
    )
    table_stats = stats.table_stats(column.qualifier) if column.qualifier else None
    if col_stats is None or value is None:
        return DEFAULT_EQ_SELECTIVITY if op == "=" else DEFAULT_RANGE_SELECTIVITY

    row_count = table_stats.row_count if table_stats else 0
    non_null_fraction = 1.0 - col_stats.null_fraction(row_count)
    if op == "=":
        if col_stats.histogram is not None:
            return col_stats.histogram.selectivity_eq(
                value, col_stats.num_distinct
            ) * non_null_fraction
        return non_null_fraction / max(col_stats.num_distinct, 1)
    if op == "<>":
        eq = _column_vs_literal(column, value, "=", stats)
        return max(0.0, non_null_fraction - eq)
    if op in ("<", "<="):
        if col_stats.histogram is not None:
            return col_stats.histogram.selectivity_range(
                None, value, high_inclusive=(op == "<=")
            ) * non_null_fraction
        return _interpolate(col_stats, value, below=True) * non_null_fraction
    if op in (">", ">="):
        if col_stats.histogram is not None:
            return col_stats.histogram.selectivity_range(
                value, None, low_inclusive=(op == ">=")
            ) * non_null_fraction
        return _interpolate(col_stats, value, below=False) * non_null_fraction
    return DEFAULT_RANGE_SELECTIVITY


def _interpolate(col_stats: ColumnStats, value: object, below: bool) -> float:
    lo, hi = col_stats.min_value, col_stats.max_value
    if (
        isinstance(lo, (int, float))
        and isinstance(hi, (int, float))
        and isinstance(value, (int, float))
        and hi > lo
    ):
        fraction = (float(value) - float(lo)) / (float(hi) - float(lo))
        fraction = max(0.0, min(1.0, fraction))
        return fraction if below else 1.0 - fraction
    return DEFAULT_RANGE_SELECTIVITY


def _column_vs_column(expr: ast.BinOp, stats: StatsContext) -> float:
    """col1 <op> col2 — the join-predicate case."""
    left, right = expr.left, expr.right
    assert isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)
    if expr.op != "=":
        return DEFAULT_RANGE_SELECTIVITY
    left_stats = stats.column_stats(left.qualifier, left.name)
    right_stats = stats.column_stats(right.qualifier, right.name)
    left_ndv = left_stats.num_distinct if left_stats else 0
    right_ndv = right_stats.num_distinct if right_stats else 0
    ndv = max(left_ndv, right_ndv)
    if ndv <= 0:
        return DEFAULT_EQ_SELECTIVITY
    return 1.0 / ndv


def _null_selectivity(expr: ast.IsNull, stats: StatsContext) -> float:
    if isinstance(expr.operand, ast.ColumnRef) and expr.operand.qualifier:
        col_stats = stats.column_stats(expr.operand.qualifier, expr.operand.name)
        table_stats = stats.table_stats(expr.operand.qualifier)
        if col_stats is not None and table_stats is not None:
            fraction = col_stats.null_fraction(table_stats.row_count)
            return 1.0 - fraction if expr.negated else fraction
    return 0.95 if expr.negated else 0.05


def _between_selectivity(expr: ast.Between, stats: StatsContext) -> float:
    low_value, low_known = _constant_value(expr.low)
    high_value, high_known = _constant_value(expr.high)
    if isinstance(expr.operand, ast.ColumnRef) and low_known and high_known:
        low = _column_vs_literal(expr.operand, low_value, ">=", stats)
        high = _column_vs_literal(expr.operand, high_value, "<=", stats)
        sel = max(0.0, low + high - 1.0)
    else:
        sel = DEFAULT_RANGE_SELECTIVITY ** 2
    return 1.0 - sel if expr.negated else sel


def _in_list_selectivity(expr: ast.InList, stats: StatsContext) -> float:
    if isinstance(expr.operand, ast.ColumnRef):
        sel = 0.0
        for item in expr.items:
            value, known = _constant_value(item)
            if known:
                sel += _column_vs_literal(expr.operand, value, "=", stats)
            else:
                sel += DEFAULT_EQ_SELECTIVITY
        sel = min(1.0, sel)
    else:
        sel = min(1.0, DEFAULT_EQ_SELECTIVITY * len(expr.items))
    return 1.0 - sel if expr.negated else sel


def _subquery_selectivity(expr: ast.SubqueryExpr) -> float:
    """Default selectivities for subquery predicates left in place (TIS)."""
    if expr.kind == "EXISTS":
        return 0.3 if expr.negated else 0.7
    if expr.kind == "IN":
        return 0.5 if expr.negated else 0.5
    if expr.kind == "QUANTIFIED":
        return 0.4
    return 0.5  # scalar comparison handled by enclosing comparison
