"""Physical plan nodes (operator trees).

A plan node carries its estimated ``cardinality`` (output rows) and
``cost`` (cumulative work units including its children), both computed by
the physical optimizer when the node is constructed.  The execution
engine interprets these nodes; :meth:`Plan.describe` produces the
EXPLAIN-style rendering.

Non-inner join types follow the query tree: ``LEFT``, ``SEMI``, ``ANTI``,
``ANTI_NA`` (null-aware antijoin).  Semi/anti joins expose only left-side
columns.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..catalog.schema import Index
from ..sql import ast
from ..sql.render import render_expr


class Plan:
    """Base class for physical plan nodes."""

    def __init__(self, cost: float, cardinality: float, aliases: frozenset[str]):
        self.cost = cost
        self.cardinality = cardinality
        self.aliases = aliases

    def children(self) -> list["Plan"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def describe(self, indent: int = 0,
                 actual_rows: "Optional[dict[int, int]]" = None) -> str:
        actual = ""
        if actual_rows is not None:
            actual = f" actual={actual_rows.get(id(self), 0)}"
        lines = [
            "  " * indent
            + f"{self.label()}  (rows={self.cardinality:.0f} "
            + f"cost={self.cost:.0f}{actual})"
        ]
        for child in self.children():
            lines.append(child.describe(indent + 1, actual_rows))
        return "\n".join(lines)

    def walk(self) -> Iterable["Plan"]:
        """Pre-order iteration over this node and all descendants."""
        yield self
        for child in self.children():
            yield from child.walk()

    def total_operator_count(self) -> int:
        return 1 + sum(c.total_operator_count() for c in self.children())


class TableScan(Plan):
    """Full scan of a base table with pushed-down filter conjuncts."""

    def __init__(self, alias: str, table_name: str, conjuncts: list[ast.Expr],
                 cost: float, cardinality: float):
        super().__init__(cost, cardinality, frozenset([alias]))
        self.alias = alias
        self.table_name = table_name
        self.conjuncts = conjuncts

    def label(self) -> str:
        text = f"TABLE SCAN {self.table_name} {self.alias}"
        if self.conjuncts:
            text += " filter[" + " AND ".join(map(render_expr, self.conjuncts)) + "]"
        return text


class IndexScan(Plan):
    """Index access: equality binds on leading columns, an optional range
    bound on the next column, residual filters applied to fetched rows.

    Bind expressions may reference other aliases; when they do, the scan
    is only valid as the inner of a nested-loop join (or as a correlated
    access inside TIS evaluation) where those aliases are already bound.
    """

    def __init__(
        self,
        alias: str,
        table_name: str,
        index: Index,
        eq_binds: list[tuple[str, ast.Expr]],
        range_bind: Optional[tuple[str, str, ast.Expr]],
        post_conjuncts: list[ast.Expr],
        cost: float,
        cardinality: float,
        covered_conjuncts: Optional[list[ast.Expr]] = None,
    ):
        super().__init__(cost, cardinality, frozenset([alias]))
        self.alias = alias
        self.table_name = table_name
        self.index = index
        self.eq_binds = eq_binds
        self.range_bind = range_bind
        self.post_conjuncts = post_conjuncts
        #: the original block conjuncts this probe consumes; the join
        #: enumerator must not re-apply them at the join node
        self.covered_conjuncts = covered_conjuncts or []

    def outer_aliases(self) -> set[str]:
        """Aliases the bind expressions depend on."""
        refs: set[str] = set()
        exprs = [e for _c, e in self.eq_binds]
        if self.range_bind is not None:
            exprs.append(self.range_bind[2])
        for expr in exprs:
            for col in ast.column_refs_in(expr):
                if col.qualifier and col.qualifier != self.alias:
                    refs.add(col.qualifier)
        return refs

    def label(self) -> str:
        binds = [f"{c}={render_expr(e)}" for c, e in self.eq_binds]
        if self.range_bind is not None:
            column, op, expr = self.range_bind
            binds.append(f"{column}{op}{render_expr(expr)}")
        text = (
            f"INDEX SCAN {self.table_name} {self.alias}"
            f" via {self.index.name}[{', '.join(binds)}]"
        )
        if self.post_conjuncts:
            text += " filter[" + " AND ".join(
                map(render_expr, self.post_conjuncts)
            ) + "]"
        return text


class ViewScan(Plan):
    """Scan over a derived table's sub-plan.

    Non-lateral views are materialised once; lateral views (produced by
    join predicate pushdown) re-execute per outer row and must appear as
    the inner of a nested-loop join.
    """

    def __init__(
        self,
        alias: str,
        child: Plan,
        column_names: list[str],
        lateral_refs: set[str],
        conjuncts: list[ast.Expr],
        cost: float,
        cardinality: float,
        correlation_keys: Optional[list[tuple[str, str]]] = None,
    ):
        super().__init__(cost, cardinality, frozenset([alias]))
        self.alias = alias
        self.child = child
        self.column_names = column_names
        self.lateral_refs = lateral_refs
        self.conjuncts = conjuncts
        #: (alias, column) pairs outside the view that its result depends
        #: on; the executor's probe caches key on these
        self.correlation_keys = correlation_keys or []

    def children(self) -> list[Plan]:
        return [self.child]

    @property
    def is_lateral(self) -> bool:
        return bool(self.lateral_refs)

    def label(self) -> str:
        kind = "LATERAL VIEW" if self.is_lateral else "VIEW"
        text = f"{kind} {self.alias}"
        if self.conjuncts:
            text += " filter[" + " AND ".join(map(render_expr, self.conjuncts)) + "]"
        return text


class Join(Plan):
    """Base for the three join methods."""

    def __init__(
        self,
        left: Plan,
        right: Plan,
        join_type: str,
        cost: float,
        cardinality: float,
    ):
        aliases = (
            left.aliases | right.aliases
            if join_type in ("INNER", "LEFT")
            else left.aliases
        )
        super().__init__(cost, cardinality, aliases)
        self.left = left
        self.right = right
        self.join_type = join_type

    def children(self) -> list[Plan]:
        return [self.left, self.right]


class NestedLoopJoin(Join):
    """Nested loops; the right side is re-evaluated per left row (an
    IndexScan right side with binds on left aliases gives index NL)."""

    def __init__(self, left: Plan, right: Plan, join_type: str,
                 conjuncts: list[ast.Expr], cost: float, cardinality: float):
        super().__init__(left, right, join_type, cost, cardinality)
        self.conjuncts = conjuncts

    def label(self) -> str:
        text = f"NESTED LOOPS {self.join_type}"
        if self.conjuncts:
            text += " on[" + " AND ".join(map(render_expr, self.conjuncts)) + "]"
        return text


class HashJoin(Join):
    """Hash join on equi-key lists; the right side builds the table."""

    def __init__(
        self,
        left: Plan,
        right: Plan,
        join_type: str,
        left_keys: list[ast.Expr],
        right_keys: list[ast.Expr],
        residual_conjuncts: list[ast.Expr],
        cost: float,
        cardinality: float,
    ):
        super().__init__(left, right, join_type, cost, cardinality)
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual_conjuncts = residual_conjuncts

    def label(self) -> str:
        keys = ", ".join(
            f"{render_expr(l)}={render_expr(r)}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HASH JOIN {self.join_type} on[{keys}]"


class MergeJoin(Join):
    """Sort-merge join on equi-key lists."""

    def __init__(
        self,
        left: Plan,
        right: Plan,
        join_type: str,
        left_keys: list[ast.Expr],
        right_keys: list[ast.Expr],
        residual_conjuncts: list[ast.Expr],
        cost: float,
        cardinality: float,
    ):
        super().__init__(left, right, join_type, cost, cardinality)
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual_conjuncts = residual_conjuncts

    def label(self) -> str:
        keys = ", ".join(
            f"{render_expr(l)}={render_expr(r)}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"MERGE JOIN {self.join_type} on[{keys}]"


class Filter(Plan):
    """Residual filter; conjuncts may contain subquery expressions, which
    execute under tuple-iteration semantics with result caching — the TIS
    path the paper's unnesting decision weighs against (§2.2.1)."""

    def __init__(self, child: Plan, conjuncts: list[ast.Expr],
                 cost: float, cardinality: float):
        super().__init__(cost, cardinality, child.aliases)
        self.child = child
        self.conjuncts = conjuncts

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        return "FILTER [" + " AND ".join(map(render_expr, self.conjuncts)) + "]"


class GroupBy(Plan):
    """Hash aggregation over group keys (one pass per grouping set when
    ROLLUP / GROUPING SETS are present)."""

    def __init__(
        self,
        child: Plan,
        group_exprs: list[ast.Expr],
        aggregates: list[ast.FuncCall],
        cost: float,
        cardinality: float,
        grouping_sets: Optional[list[list[int]]] = None,
    ):
        super().__init__(cost, cardinality, child.aliases)
        self.child = child
        self.group_exprs = group_exprs
        self.aggregates = aggregates
        self.grouping_sets = grouping_sets

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(map(render_expr, self.group_exprs))
        if self.grouping_sets is not None:
            return f"GROUP BY GROUPING SETS [{keys}] x{len(self.grouping_sets)}"
        return f"GROUP BY [{keys}]" if keys else "AGGREGATE"


class WindowCompute(Plan):
    def __init__(self, child: Plan, windows: list[ast.WindowFunc],
                 cost: float, cardinality: float):
        super().__init__(cost, cardinality, child.aliases)
        self.child = child
        self.windows = windows

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        return f"WINDOW ({len(self.windows)} functions)"


class Distinct(Plan):
    def __init__(self, child: Plan, cost: float, cardinality: float):
        super().__init__(cost, cardinality, child.aliases)
        self.child = child

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        return "DISTINCT"


class Sort(Plan):
    def __init__(self, child: Plan, order_by: list[ast.OrderItem],
                 cost: float, cardinality: float):
        super().__init__(cost, cardinality, child.aliases)
        self.child = child
        self.order_by = order_by

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(
            render_expr(o.expr) + (" DESC" if o.descending else "")
            for o in self.order_by
        )
        return f"SORT [{keys}]"


class Limit(Plan):
    """ROWNUM row limit."""

    def __init__(self, child: Plan, count: int, cost: float, cardinality: float):
        super().__init__(cost, cardinality, child.aliases)
        self.child = child
        self.count = count

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        return f"COUNT STOPKEY (rownum <= {self.count})"


class Project(Plan):
    """Final projection to the block's select list."""

    def __init__(self, child: Plan, select_items: list[ast.SelectItem],
                 cost: float, cardinality: float):
        super().__init__(cost, cardinality, child.aliases)
        self.child = child
        self.select_items = select_items

    def children(self) -> list[Plan]:
        return [self.child]

    def label(self) -> str:
        return "PROJECT [" + ", ".join(
            i.alias or render_expr(i.expr) for i in self.select_items
        ) + "]"


class SetOp(Plan):
    def __init__(self, op: str, branches: Iterable[Plan],
                 cost: float, cardinality: float):
        branches = list(branches)
        super().__init__(cost, cardinality, frozenset())
        self.op = op
        self.branches = branches

    def children(self) -> list[Plan]:
        return list(self.branches)

    def label(self) -> str:
        return self.op
