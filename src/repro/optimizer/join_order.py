"""Join-order enumeration for one query block.

Left-deep dynamic programming over alias subsets (System-R style), with a
greedy fallback above a size threshold.  The enumerator honours the
partial orders the paper describes for non-commutative joins: a LEFT /
SEMI / ANTI from-item may only be placed after every alias its ON
condition references (§2.1.1), and a lateral view produced by join
predicate pushdown must follow the aliases it references and joins by
nested loops only (§2.2.3).

Per step it considers three join methods — nested loops (including index
NL when a parameterised index path's dependencies are satisfied), hash,
and sort-merge — and models the semijoin/antijoin execution properties
the paper calls out: stop-at-first-match and caching of results for
duplicate left-side keys.

Residual predicates that could not be embedded in scans or joins
(correlated subquery predicates evaluated under TIS, expensive functions)
arrive as :class:`PendingFilter` objects with a precomputed per-row cost
and are applied at the earliest state whose alias set covers them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import OptimizerError
from ..qtree import exprutil
from ..sql import ast
from .costmodel import CostModel
from .plans import (
    Filter,
    HashJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    Plan,
    ViewScan,
)
from .selectivity import StatsContext, conjuncts_selectivity

#: DP is used up to this many from-items; greedy above.
DEFAULT_DP_THRESHOLD = 8


@dataclass
class Relation:
    """One from-item prepared for join enumeration."""

    alias: str
    paths: list[Plan]
    join_type: str = "INNER"
    join_conjuncts: list[ast.Expr] = field(default_factory=list)
    required_predecessors: set[str] = field(default_factory=set)

    @property
    def is_inner(self) -> bool:
        return self.join_type == "INNER"


@dataclass
class PendingFilter:
    """A residual conjunct with its evaluation cost per input row."""

    conjunct: ast.Expr
    local_refs: set[str]
    selectivity: float
    per_row_cost: float


class JoinOrderEnumerator:
    def __init__(
        self,
        relations: list[Relation],
        join_conjuncts: list[ast.Expr],
        filters: list[PendingFilter],
        stats: StatsContext,
        cost_model: CostModel,
        dp_threshold: int = DEFAULT_DP_THRESHOLD,
        budget: Optional[float] = None,
    ):
        self._relations = {r.alias: r for r in relations}
        self._join_conjuncts = join_conjuncts
        self._filters = filters
        self._stats = stats
        self._cm = cost_model
        self._dp_threshold = dp_threshold
        self._budget = budget

    # -- public -----------------------------------------------------------

    def best_plan(self) -> Plan:
        if not self._relations:
            raise OptimizerError("query block has no from-items")
        if len(self._relations) == 1:
            relation = next(iter(self._relations.values()))
            plan = self._leaf_plan(relation)
            if plan is None:
                raise OptimizerError(
                    f"no usable access path for {relation.alias!r}"
                )
            return plan
        if len(self._relations) <= self._dp_threshold:
            return self._dp()
        return self._greedy()

    # -- leaf handling -------------------------------------------------------

    def _leading_candidates(self, relation: Relation) -> list[Plan]:
        """Paths usable when *relation* leads the join order."""
        if not relation.is_inner or relation.required_predecessors:
            return []
        local = set(self._relations)
        candidates = []
        for path in relation.paths:
            deps = _path_dependencies(path) & local
            if not deps:
                candidates.append(path)
        return candidates

    def _leaf_plan(self, relation: Relation) -> Optional[Plan]:
        candidates = self._leading_candidates(relation)
        if not candidates:
            return None
        best = min(candidates, key=lambda p: p.cost)
        return self._apply_filters(best, frozenset([relation.alias]), set())

    def _apply_filters(
        self, plan: Plan, covered: frozenset[str], already: set[int]
    ) -> Plan:
        """Wrap *plan* with every pending filter now evaluable."""
        todo = [
            f for f in self._filters
            if id(f) not in already and f.local_refs <= covered
        ]
        for pending in todo:
            already.add(id(pending))
            rows_in = plan.cardinality
            cost = plan.cost + rows_in * pending.per_row_cost
            cardinality = rows_in * pending.selectivity
            plan = Filter(plan, [pending.conjunct], cost, cardinality)
        return plan

    # -- DP -----------------------------------------------------------------

    def _dp(self) -> Plan:
        aliases = sorted(self._relations)
        best: dict[frozenset[str], Plan] = {}
        for alias in aliases:
            relation = self._relations[alias]
            plan = self._leaf_plan(relation)
            if plan is not None:
                best[frozenset([alias])] = plan

        all_set = frozenset(aliases)
        for size in range(1, len(aliases)):
            for subset, plan in [
                (s, p) for s, p in best.items() if len(s) == size
            ]:
                for alias in aliases:
                    if alias in subset:
                        continue
                    extended = subset | {alias}
                    candidate = self._extend(plan, subset, alias)
                    if candidate is None:
                        continue
                    incumbent = best.get(extended)
                    if incumbent is None or candidate.cost < incumbent.cost:
                        best[frozenset(extended)] = candidate
        final = best.get(all_set)
        if final is None:
            if self._budget is not None:
                from .physical import CostBudgetExceeded

                raise CostBudgetExceeded(
                    "every join order exceeded the cost budget"
                )
            raise OptimizerError(
                "no valid join order (unsatisfiable partial order constraints)"
            )
        return final

    def _greedy(self) -> Plan:
        remaining = set(self._relations)
        plan: Optional[Plan] = None
        covered: frozenset[str] = frozenset()
        # cheapest viable leader
        leaders = [
            (p.cost, alias, p)
            for alias in remaining
            for p in [self._leaf_plan(self._relations[alias])]
            if p is not None
        ]
        if not leaders:
            raise OptimizerError("no relation can lead the join order")
        _, lead_alias, plan = min(leaders, key=lambda t: t[0])
        covered = frozenset([lead_alias])
        remaining.discard(lead_alias)
        while remaining:
            step_best: Optional[tuple[float, str, Plan]] = None
            for alias in remaining:
                candidate = self._extend(plan, covered, alias)
                if candidate is None:
                    continue
                if step_best is None or candidate.cost < step_best[0]:
                    step_best = (candidate.cost, alias, candidate)
            if step_best is None:
                if self._budget is not None:
                    from .physical import CostBudgetExceeded

                    raise CostBudgetExceeded(
                        "every greedy join step exceeded the cost budget"
                    )
                raise OptimizerError(
                    "greedy join ordering got stuck on partial-order constraints"
                )
            _, alias, plan = step_best
            covered = covered | {alias}
            remaining.discard(alias)
        return plan

    # -- join step -------------------------------------------------------------

    def _extend(
        self, left: Plan, subset: frozenset[str], alias: str
    ) -> Optional[Plan]:
        relation = self._relations[alias]
        if not relation.required_predecessors <= subset:
            return None
        if self._budget is not None and left.cost > self._budget:
            return None

        extended = subset | {alias}
        if relation.is_inner:
            conjuncts = [
                c for c in self._join_conjuncts
                if self._applies_now(c, subset, alias)
            ]
            join_type = "INNER"
        else:
            conjuncts = list(relation.join_conjuncts)
            join_type = relation.join_type

        candidates: list[Plan] = []
        local = set(self._relations)
        for path in relation.paths:
            deps = _path_dependencies(path) & local
            if not deps <= subset:
                continue
            candidates.extend(
                self._join_candidates(
                    left, path, join_type, conjuncts, parameterised=bool(deps)
                )
            )
        if not candidates:
            return None
        best = min(candidates, key=lambda p: p.cost)
        applied = {
            id(f) for f in self._filters if f.local_refs <= subset
        }
        return self._apply_filters(best, frozenset(extended), applied)

    def _applies_now(
        self, conjunct: ast.Expr, subset: frozenset[str], alias: str
    ) -> bool:
        refs = exprutil.aliases_referenced(conjunct) & set(self._relations)
        return alias in refs and refs <= (subset | {alias})

    def _join_candidates(
        self,
        left: Plan,
        right: Plan,
        join_type: str,
        conjuncts: list[ast.Expr],
        parameterised: bool,
    ) -> list[Plan]:
        covered = getattr(right, "covered_conjuncts", [])
        covered_ids = {id(c) for c in covered}
        residual = [c for c in conjuncts if id(c) not in covered_ids]

        candidates = [
            self._nl_join(left, right, join_type, residual, parameterised)
        ]
        if not parameterised:
            equi = _equi_split(left.aliases, right.aliases, residual)
            if equi is not None:
                left_keys, right_keys, rest = equi
                # The null-aware antijoin needs full three-valued
                # evaluation of the condition; hashing can only model it
                # for a single bare key with no residual (the NOT IN
                # case), and merge not at all.
                hashable = join_type != "ANTI_NA" or (
                    len(left_keys) == 1 and not rest
                )
                if hashable:
                    candidates.append(
                        self._hash_join(
                            left, right, join_type, left_keys, right_keys, rest
                        )
                    )
                if join_type != "ANTI_NA":
                    candidates.append(
                        self._merge_join(
                            left, right, join_type, left_keys, right_keys, rest
                        )
                    )
        return candidates

    # -- join method costing ----------------------------------------------------

    def _join_selectivity(self, conjuncts: list[ast.Expr]) -> float:
        return conjuncts_selectivity(conjuncts, self._stats)

    def _output_cardinality(
        self, left: Plan, right: Plan, join_type: str, conjuncts: list[ast.Expr],
        right_parameterised: bool,
    ) -> float:
        sel = self._join_selectivity(conjuncts)
        # A parameterised path's cardinality is rows *per probe*, so the
        # product form below covers both cases.
        inner_card = left.cardinality * right.cardinality * sel
        if join_type == "INNER":
            return inner_card
        if join_type == "LEFT":
            return max(left.cardinality, inner_card)
        match_prob = min(1.0, right.cardinality * sel)
        if join_type == "SEMI":
            return left.cardinality * match_prob
        return left.cardinality * (1.0 - match_prob)  # ANTI / ANTI_NA

    def _left_key_ndv(self, left: Plan, conjuncts: list[ast.Expr]) -> float:
        """Distinct left-side key combinations, for semijoin caching."""
        ndv = 1.0
        found = False
        for conjunct in conjuncts:
            pair = exprutil.equality_columns(conjunct)
            if pair is None:
                continue
            for col in pair:
                if col.qualifier in left.aliases:
                    stats = self._stats.column_stats(col.qualifier, col.name)
                    if stats is not None and stats.num_distinct:
                        ndv *= stats.num_distinct
                        found = True
        if not found:
            return left.cardinality
        return min(ndv, max(left.cardinality, 1.0))

    def _nl_join(
        self,
        left: Plan,
        right: Plan,
        join_type: str,
        conjuncts: list[ast.Expr],
        parameterised: bool,
    ) -> Plan:
        cm = self._cm
        out_card = self._output_cardinality(
            left, right, join_type, conjuncts, parameterised
        )
        probes = max(left.cardinality, 0.0)
        if join_type in ("SEMI", "ANTI", "ANTI_NA"):
            # Stop at first match + result caching for duplicate left keys.
            distinct_probes = min(probes, self._left_key_ndv(left, conjuncts))
            cache_cost = probes * cm.tis_cache_probe
        else:
            distinct_probes = probes
            cache_cost = 0.0

        if parameterised:
            per_probe = right.cost
            scan_rows = right.cardinality
        else:
            per_probe = right.cardinality * cm.pipeline_row
            scan_rows = right.cardinality
        stop_factor = 0.5 if join_type == "SEMI" else 1.0
        inner_cost = distinct_probes * per_probe * stop_factor
        predicate_cost = (
            distinct_probes * scan_rows * cm.predicate_eval * max(len(conjuncts), 1)
            * stop_factor
        )
        setup_cost = 0.0 if parameterised else right.cost
        cost = (
            left.cost
            + setup_cost
            + inner_cost
            + predicate_cost
            + cache_cost
            + out_card * cm.pipeline_row
        )
        return NestedLoopJoin(left, right, join_type, conjuncts, cost, out_card)

    def _hash_join(
        self,
        left: Plan,
        right: Plan,
        join_type: str,
        left_keys: list[ast.Expr],
        right_keys: list[ast.Expr],
        residual: list[ast.Expr],
    ) -> Plan:
        cm = self._cm
        all_conjuncts = [
            ast.BinOp("=", l, r) for l, r in zip(left_keys, right_keys)
        ] + residual
        out_card = self._output_cardinality(
            left, right, join_type, all_conjuncts, right_parameterised=False
        )
        cost = (
            left.cost
            + right.cost
            + cm.hash_build_cost(right.cardinality)
            + cm.hash_probe_cost(left.cardinality)
            + left.cardinality * cm.predicate_eval * len(residual)
            + out_card * cm.pipeline_row
        )
        return HashJoin(
            left, right, join_type, left_keys, right_keys, residual, cost, out_card
        )

    def _merge_join(
        self,
        left: Plan,
        right: Plan,
        join_type: str,
        left_keys: list[ast.Expr],
        right_keys: list[ast.Expr],
        residual: list[ast.Expr],
    ) -> Plan:
        cm = self._cm
        all_conjuncts = [
            ast.BinOp("=", l, r) for l, r in zip(left_keys, right_keys)
        ] + residual
        out_card = self._output_cardinality(
            left, right, join_type, all_conjuncts, right_parameterised=False
        )
        cost = (
            left.cost
            + right.cost
            + cm.sort_cost(left.cardinality)
            + cm.sort_cost(right.cardinality)
            + (left.cardinality + right.cardinality) * cm.pipeline_row
            + out_card * cm.pipeline_row
        )
        return MergeJoin(
            left, right, join_type, left_keys, right_keys, residual, cost, out_card
        )


def _path_dependencies(path: Plan) -> set[str]:
    if isinstance(path, IndexScan):
        return path.outer_aliases()
    if isinstance(path, ViewScan):
        return set(path.lateral_refs)
    return set()


def _equi_split(
    left_aliases: frozenset[str],
    right_aliases: frozenset[str],
    conjuncts: list[ast.Expr],
) -> Optional[tuple[list[ast.Expr], list[ast.Expr], list[ast.Expr]]]:
    """Split conjuncts into hash keys (left expr, right expr) and
    residuals.  Returns None when no equi-key exists."""
    left_keys: list[ast.Expr] = []
    right_keys: list[ast.Expr] = []
    rest: list[ast.Expr] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, ast.BinOp) and conjunct.op == "=" \
                and not ast.contains_subquery(conjunct):
            l_refs = exprutil.aliases_referenced(conjunct.left)
            r_refs = exprutil.aliases_referenced(conjunct.right)
            if l_refs and l_refs <= left_aliases and r_refs and r_refs <= right_aliases:
                left_keys.append(conjunct.left)
                right_keys.append(conjunct.right)
                continue
            if l_refs and l_refs <= right_aliases and r_refs and r_refs <= left_aliases:
                left_keys.append(conjunct.right)
                right_keys.append(conjunct.left)
                continue
        rest.append(conjunct)
    if not left_keys:
        return None
    return left_keys, right_keys, rest
