"""Physical optimizer: cardinality/selectivity estimation, access paths,
join ordering, plan nodes, and the cost model."""

from .annotations import AnnotationStore
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .physical import (
    BlockStatsContext,
    CostBudgetExceeded,
    OptimizerCounters,
    PhysicalOptimizer,
)
from .plans import Plan

__all__ = [
    "AnnotationStore",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "BlockStatsContext",
    "CostBudgetExceeded",
    "OptimizerCounters",
    "PhysicalOptimizer",
    "Plan",
]
