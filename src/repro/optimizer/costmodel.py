"""The cost model: work-unit prices for every physical operation.

Costs are expressed in *work units* — the same currency the execution
engine's accounting uses (roughly "rows touched", with multipliers for
expensive operations).  Keeping the estimate and the measurement in one
currency is what lets the benchmark harness compare "optimizer thought"
vs "engine did", and is why cost-based decisions usually (not always)
match reality, reproducing the paper's residual mis-estimation cases.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the cost model."""

    #: cost to produce one row from a full table scan
    scan_row: float = 1.0
    #: cost of traversing an index (per probe)
    index_probe: float = 2.0
    #: cost to fetch one row via an index entry
    index_row: float = 1.0
    #: per-row cost of evaluating one predicate conjunct
    predicate_eval: float = 0.1
    #: per-row cost of a hash-table insert or probe
    hash_row: float = 0.6
    #: multiplier for sort cost: sort_row * n * log2(n)
    sort_row: float = 0.35
    #: per-row cost of passing through a join / filter / projection
    pipeline_row: float = 0.1
    #: per-row cost of an aggregation update
    agg_row: float = 0.5
    #: per-row cost of a window-function computation
    window_row: float = 0.8
    #: per-probe cost of the TIS subquery-result cache (§2.1.1 caching)
    tis_cache_probe: float = 0.2
    #: cost to materialise one view row
    materialise_row: float = 0.5

    def sort_cost(self, rows: float) -> float:
        import math

        if rows <= 1:
            return self.sort_row
        return self.sort_row * rows * math.log2(rows)

    def hash_build_cost(self, rows: float) -> float:
        return self.hash_row * max(rows, 1.0)

    def hash_probe_cost(self, rows: float) -> float:
        return self.hash_row * max(rows, 1.0)


DEFAULT_COST_MODEL = CostModel()
