"""Cross-statement memoization of optimized physical subplans.

:class:`~repro.optimizer.annotations.AnnotationStore` (§3.4.2) reuses
plans *within* one optimization: the framework clears it when a
transformation decision is final.  The :class:`PlanMemo` generalizes the
same structural-signature keys to whole-subplan reuse *across* CBQT
search states, hard parses, and optimizer configurations ("Efficient
Cost-Based Rewrite in a Bottom-Up Optimizer" shares physical subplans
across rewrite states the same way).  Two tiers:

* the **node tier** maps a query node's structural signature (the exact
  key the annotation store uses) to its optimized plan, so a subquery
  body that appears untransformed in every search state — or in the next
  hard parse of the same statement — is optimized once ever;
* the **join tier** maps a block's *join core* (from-items, join
  types/conjuncts, WHERE conjuncts — everything that feeds
  :class:`~repro.optimizer.join_order.JoinOrderEnumerator`) to the best
  join plan, so states that differ only in post-join clauses (select
  list, GROUP BY, ORDER BY, ROWNUM) share one join-order enumeration.

Correctness contract:

* Entries are valid only within one *epoch*: the catalog version, the
  statistics version, and the costing-relevant configuration (cost
  model, DP threshold, dynamic sampling).  :meth:`PlanMemo.begin_statement`
  compares the caller's epoch fingerprint and clears the memo on any
  mismatch — the same invalidation rule the plan cache applies on DDL /
  ANALYZE version bumps.
* Statements optimized with peeked bind values never consult or populate
  the memo: peeks are not part of the structural signature, so sharing
  across different peeked values could change plans.
* Plans computed under a cost budget (§3.4.1 cut-off) are stored only
  when they came in at or under the budget: cost monotonicity then
  guarantees they equal the unbudgeted optimum, so a later unbudgeted
  lookup may reuse them.
* Plans are immutable after construction, so memo hits share subplan
  DAGs without deep copies (re-parenting is reference sharing).
* The lookup path is a ``memo.lookup`` fault-injection point; an
  injected :class:`~repro.errors.FaultInjected` degrades the statement
  to memo-off (the session deactivates) — a memo failure can slow a
  statement down, never change its plan.

In paranoid mode (``debug_checks``) every reused plan is re-audited by
:class:`~repro.analysis.PlanVerifier` before it is returned, so a memo
hit is held to exactly the invariants a freshly built plan must satisfy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Optional

from ..errors import FaultInjected, VerificationError
from ..resilience import faults
from .plans import Plan


@dataclass
class MemoStats:
    """Lifetime accounting of one :class:`PlanMemo` (metrics collector)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    join_hits: int = 0
    join_misses: int = 0
    join_stores: int = 0
    #: epoch-fingerprint mismatches that cleared the memo
    invalidations: int = 0
    #: statements that skipped the memo (peeked binds / disabled)
    disabled_statements: int = 0
    #: injected lookup faults absorbed by degrading to memo-off
    faults: int = 0
    #: plan operators served from the memo instead of being rebuilt
    shared_operators: int = 0
    #: largest reused subplan, in operators (share depth)
    max_share_depth: int = 0


def _verify_reused(plan: Plan) -> None:
    """Paranoid-mode audit of a memo hit: the reused plan must satisfy
    every :class:`~repro.analysis.PlanVerifier` invariant, exactly as a
    freshly built plan would under ``debug_checks``."""
    from ..analysis import PlanVerifier

    errors = [d for d in PlanVerifier().verify(plan) if d.is_error]
    if errors:
        raise VerificationError(
            "memo-reused plan failed verification: "
            + "; ".join(d.format() for d in errors)
        )


class MemoSession:
    """One statement's view of the shared memo.

    Created by :meth:`PlanMemo.begin_statement`; the physical optimizer
    holds it for the statement.  The session carries the per-statement
    hit accounting the framework reports and the ``active`` flag the
    ``memo.lookup`` fault point degrades: after an injected fault every
    further lookup and store is a no-op, so the statement completes with
    freshly built plans.
    """

    __slots__ = (
        "_memo",
        "active",
        "paranoid",
        "hits",
        "join_hits",
        "stores",
        "join_stores",
        "shared_operators",
        "max_share_depth",
    )

    def __init__(self, memo: "PlanMemo", paranoid: bool = False):
        self._memo = memo
        self.active = True
        self.paranoid = paranoid
        self.hits = 0
        self.join_hits = 0
        self.stores = 0
        self.join_stores = 0
        self.shared_operators = 0
        self.max_share_depth = 0

    # -- node tier ---------------------------------------------------------

    def get(self, sig: str) -> Optional[Plan]:
        return self._lookup(sig, join_tier=False)

    def put(self, sig: str, plan: Plan) -> None:
        if not self.active:
            return
        self.stores += 1
        self._memo._store(sig, plan, join_tier=False)

    # -- join tier ---------------------------------------------------------

    def join_get(self, key: str) -> Optional[Plan]:
        return self._lookup(key, join_tier=True)

    def join_put(self, key: str, plan: Plan) -> None:
        if not self.active:
            return
        self.join_stores += 1
        self._memo._store(key, plan, join_tier=True)

    # -- shared machinery --------------------------------------------------

    def _lookup(self, key: str, join_tier: bool) -> Optional[Plan]:
        if not self.active:
            return None
        try:
            faults.check("memo.lookup")
        except FaultInjected:
            # Degrade to memo-off for the rest of the statement: a memo
            # failure must never produce a wrong plan, only fresh work.
            self.active = False
            self._memo._record_fault()
            return None
        plan = self._memo._lookup(key, join_tier)
        if plan is None:
            return None
        if self.paranoid:
            _verify_reused(plan)
        operators = plan.total_operator_count()
        self.shared_operators += operators
        if operators > self.max_share_depth:
            self.max_share_depth = operators
        if join_tier:
            self.join_hits += 1
        else:
            self.hits += 1
        return plan


class PlanMemo:
    """The shared, epoch-validated subplan memo (one per Database).

    Thread-safe: concurrent hard parses from the serving front end share
    one memo; every table access happens under one lock, and the plans
    themselves are immutable.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.stats = MemoStats()
        self._lock = threading.Lock()
        self._plans: dict[str, Plan] = {}
        self._join_plans: dict[str, Plan] = {}
        self._fingerprint: Optional[Hashable] = None

    # -- lifecycle ---------------------------------------------------------

    def begin_statement(
        self,
        fingerprint: Hashable,
        peeked: bool = False,
        paranoid: bool = False,
    ) -> Optional[MemoSession]:
        """Open a statement-scoped session, validating the epoch.

        *fingerprint* must capture everything a cached plan depends on:
        catalog version, statistics version, and the costing-relevant
        config.  A mismatch clears the memo (version-bump invalidation).
        Returns ``None`` — memo off for the statement — when the memo is
        disabled or *peeked* bind values are in play.
        """
        with self._lock:
            if fingerprint != self._fingerprint:
                if self._fingerprint is not None and (
                    self._plans or self._join_plans
                ):
                    self.stats.invalidations += 1
                self._plans.clear()
                self._join_plans.clear()
                self._fingerprint = fingerprint
            if not self.enabled or peeked:
                self.stats.disabled_statements += 1
                return None
        return MemoSession(self, paranoid=paranoid)

    def invalidate(self) -> None:
        """Drop every entry (explicit invalidation; epoch unchanged)."""
        with self._lock:
            self._plans.clear()
            self._join_plans.clear()
            self.stats.invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans) + len(self._join_plans)

    # -- session back ends -------------------------------------------------

    def _lookup(self, key: str, join_tier: bool) -> Optional[Plan]:
        with self._lock:
            table = self._join_plans if join_tier else self._plans
            plan = table.get(key)
            stats = self.stats
            if plan is None:
                if join_tier:
                    stats.join_misses += 1
                else:
                    stats.misses += 1
            else:
                operators = plan.total_operator_count()
                stats.shared_operators += operators
                if operators > stats.max_share_depth:
                    stats.max_share_depth = operators
                if join_tier:
                    stats.join_hits += 1
                else:
                    stats.hits += 1
        return plan

    def _store(self, key: str, plan: Plan, join_tier: bool) -> None:
        with self._lock:
            if join_tier:
                table = self._join_plans
                self.stats.join_stores += 1
            else:
                table = self._plans
                self.stats.stores += 1
            table[key] = plan

    def _record_fault(self) -> None:
        with self._lock:
            self.stats.faults += 1

    # -- metrics -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Metrics-collector export (``Database.snapshot()['plan_memo']``)."""
        with self._lock:
            stats = self.stats
            lookups = stats.hits + stats.misses + stats.join_hits \
                + stats.join_misses
            hits = stats.hits + stats.join_hits
            return {
                "enabled": self.enabled,
                "entries": len(self._plans) + len(self._join_plans),
                "hits": stats.hits,
                "misses": stats.misses,
                "stores": stats.stores,
                "join_hits": stats.join_hits,
                "join_misses": stats.join_misses,
                "join_stores": stats.join_stores,
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "invalidations": stats.invalidations,
                "disabled_statements": stats.disabled_statements,
                "faults": stats.faults,
                "shared_operators": stats.shared_operators,
                "max_share_depth": stats.max_share_depth,
            }
