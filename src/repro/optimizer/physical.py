"""The physical optimizer: query tree (declarative) -> plan (operators).

This is the "cost estimation technique" component of the CBQT framework
(§3.1): every transformation state is costed by invoking this optimizer
on the transformed tree.  It optimizes bottom-up — derived tables and
subquery bodies first — reusing cost annotations for sub-trees it has
seen before, and supports a cost budget (cost cut-off, §3.4.1): when the
accumulated cost of a state exceeds the best complete state found so far,
optimization of that state aborts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..catalog.schema import Catalog
from ..catalog.statistics import ColumnStats, StatisticsRegistry, TableStats
from ..errors import OptimizerError
from ..qtree import exprutil, signature
from ..qtree.blocks import FromItem, QueryBlock, QueryNode, SetOpBlock
from ..sql import ast
from .access_paths import base_table_paths
from .annotations import AnnotationStore
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .join_order import (
    DEFAULT_DP_THRESHOLD,
    JoinOrderEnumerator,
    PendingFilter,
    Relation,
)
from .memo import MemoSession
from .plans import (
    Distinct,
    Filter,
    GroupBy,
    Limit,
    Plan,
    Project,
    SetOp,
    Sort,
    ViewScan,
    WindowCompute,
)
from .selectivity import conjunct_selectivity, conjuncts_selectivity


class CostBudgetExceeded(OptimizerError):
    """Raised when a state's cost passes the incumbent best (cost cut-off)."""


@dataclass
class OptimizerCounters:
    """Bookkeeping the benchmarks report (Table 1 uses blocks_optimized)."""

    blocks_optimized: int = 0
    annotation_hits: int = 0
    #: *fresh* join-order enumerations: incremented only when
    #: JoinOrderEnumerator actually runs, so a join-tier memo hit — the
    #: expensive work CBQT states redo without it — does not count.
    join_orders_considered: int = 0

    def reset(self) -> None:
        self.blocks_optimized = 0
        self.annotation_hits = 0
        self.join_orders_considered = 0


class BlockStatsContext:
    """StatsContext over the aliases of one block (plus anything visible
    through it being absent: unknown aliases resolve to no stats, which is
    exactly right for outer-correlation parameters)."""

    def __init__(self, alias_stats: dict[str, Optional[TableStats]]):
        self._alias_stats = alias_stats

    def column_stats(self, alias: str, column: str) -> Optional[ColumnStats]:
        stats = self._alias_stats.get(alias)
        if stats is None:
            return None
        if column == "rowid":
            # ROWID is unique per row by construction.
            return ColumnStats(num_distinct=max(stats.row_count, 1))
        return stats.column(column)

    def table_stats(self, alias: str) -> Optional[TableStats]:
        return self._alias_stats.get(alias)


class PhysicalOptimizer:
    """Plans query trees; one instance per Database, shared by CBQT."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: StatisticsRegistry,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        annotations: Optional[AnnotationStore] = None,
        counters: Optional[OptimizerCounters] = None,
        dp_threshold: int = DEFAULT_DP_THRESHOLD,
        stats_sampler=None,
        memo: Optional[MemoSession] = None,
    ):
        self._catalog = catalog
        self._statistics = statistics
        self._cm = cost_model
        # explicit None check: an empty AnnotationStore is falsy (__len__)
        self.annotations = (
            annotations if annotations is not None else AnnotationStore()
        )
        self.counters = counters if counters is not None else OptimizerCounters()
        self._dp_threshold = dp_threshold
        #: optional callable(table_name) -> TableStats for tables without
        #: collected statistics (dynamic sampling; cached per §3.4.4)
        self._stats_sampler = stats_sampler
        #: statement-scoped view of the cross-statement subplan memo;
        #: None means memo-off (statement uses peeked binds, the feature
        #: is disabled, or a direct construction such as the benches)
        self.memo = memo

    # -- public ------------------------------------------------------------

    def optimize(self, node: QueryNode, budget: Optional[float] = None) -> Plan:
        """Produce the cheapest plan for *node*.

        Raises :class:`CostBudgetExceeded` if no plan within *budget*
        exists (used by the CBQT cost cut-off).
        """
        plan = self._optimize_node(node, budget)
        if budget is not None and plan.cost > budget:
            raise CostBudgetExceeded(
                f"plan cost {plan.cost:.0f} exceeds budget {budget:.0f}"
            )
        return plan

    # -- dispatch ------------------------------------------------------------

    def _optimize_node(self, node: QueryNode, budget: Optional[float]) -> Plan:
        sig = signature(node)
        cached = self.annotations.get(sig)
        if cached is not None:
            self.counters.annotation_hits += 1
            return cached
        memo = self.memo
        if memo is not None:
            shared = memo.get(sig)
            if shared is not None:
                # Promote into the statement-local store so further uses
                # within this statement hit without a memo lookup.
                self.annotations.put(sig, shared)
                return shared
        if isinstance(node, SetOpBlock):
            plan = self._optimize_setop(node, budget)
        elif isinstance(node, QueryBlock):
            plan = self._optimize_block(node, budget)
        else:
            raise OptimizerError(f"cannot optimize {type(node).__name__}")
        self.annotations.put(sig, plan)
        if memo is not None and (budget is None or plan.cost <= budget):
            # Within-budget plans are the true unbudgeted optimum (DP
            # costs are monotone), so they are safe to reuse anywhere;
            # over-budget plans never reach here (the block raises).
            memo.put(sig, plan)
        return plan

    def _optimize_setop(self, node: SetOpBlock, budget: Optional[float]) -> Plan:
        branches = [self._optimize_node(b, budget) for b in node.branches]
        cost = sum(b.cost for b in branches)
        cm = self._cm
        if node.op == "UNION ALL":
            card = sum(b.cardinality for b in branches)
            cost += card * cm.pipeline_row
        elif node.op == "UNION":
            total = sum(b.cardinality for b in branches)
            card = total * 0.7
            cost += cm.hash_build_cost(total)
        elif node.op == "INTERSECT":
            left, right = branches
            card = min(left.cardinality, right.cardinality) * 0.5
            cost += cm.hash_build_cost(right.cardinality)
            cost += cm.hash_probe_cost(left.cardinality)
        else:  # MINUS
            left, right = branches
            card = left.cardinality * 0.5
            cost += cm.hash_build_cost(right.cardinality)
            cost += cm.hash_probe_cost(left.cardinality)
        plan: Plan = SetOp(node.op, branches, cost, card)
        if node.order_by:
            plan = Sort(
                plan, node.order_by, plan.cost + cm.sort_cost(card), card
            )
        return plan

    # -- block planning -----------------------------------------------------------

    def _optimize_block(self, block: QueryBlock, budget: Optional[float]) -> Plan:
        self.counters.blocks_optimized += 1
        cm = self._cm
        local_aliases = block.aliases()

        plain: list[ast.Expr] = []
        subquery_conjuncts: list[ast.Expr] = []
        expensive_conjuncts: list[ast.Expr] = []
        for conjunct in block.where_conjuncts:
            if ast.contains_subquery(conjunct):
                subquery_conjuncts.append(conjunct)
            elif self._expensive_call_cost(conjunct) > 0.0:
                # Expensive (procedural / user-defined) predicates are
                # never embedded in scans; they are costed per row so the
                # predicate-pullup transformation (§2.2.6) has a real
                # trade-off to optimize.
                expensive_conjuncts.append(conjunct)
            else:
                plain.append(conjunct)

        alias_stats: dict[str, Optional[TableStats]] = {}
        relations: list[Relation] = []
        non_inner_aliases = {
            item.alias for item in block.from_items if not item.is_inner
        }
        # First pass: stats for base tables so view planning can use them.
        for item in block.from_items:
            if item.is_base_table:
                alias_stats[item.alias] = self._table_stats(item.table_name)
        stats_ctx = BlockStatsContext(alias_stats)

        for item in block.from_items:
            if item.is_base_table:
                # WHERE conjuncts referencing a null-supplying (LEFT) item
                # filter *after* the outer join; only the ON condition may
                # be embedded in its access path.
                if item.is_inner:
                    relevant = [
                        c for c in plain
                        if item.alias in exprutil.aliases_referenced(c)
                    ] + item.join_conjuncts
                else:
                    relevant = list(item.join_conjuncts)
                paths = base_table_paths(
                    item.alias,
                    self._catalog.table(item.table_name),
                    alias_stats[item.alias],
                    relevant,
                    local_aliases,
                    stats_ctx,
                    cm,
                )
            else:
                paths = [self._plan_view(item, block, plain, stats_ctx, budget)]
                alias_stats[item.alias] = self._derive_view_stats(
                    item.subquery, paths[0]
                )
            relations.append(
                Relation(
                    item.alias,
                    paths,
                    item.join_type,
                    [c.clone() for c in item.join_conjuncts],
                    item.required_predecessors() & local_aliases,
                )
            )

        join_conjuncts: list[ast.Expr] = []
        pending: list[PendingFilter] = []
        for conjunct in plain:
            refs = exprutil.aliases_referenced(conjunct) & local_aliases
            if len(refs) >= 2 and not (refs & non_inner_aliases):
                join_conjuncts.append(conjunct)
            elif len(refs) >= 2 or (refs & non_inner_aliases):
                # References a null-supplying side: apply after that join.
                pending.append(
                    PendingFilter(
                        conjunct,
                        refs,
                        conjunct_selectivity(conjunct, stats_ctx),
                        cm.predicate_eval,
                    )
                )
            elif not refs:
                pending.append(
                    PendingFilter(
                        conjunct,
                        refs,
                        conjunct_selectivity(conjunct, stats_ctx),
                        cm.predicate_eval,
                    )
                )
            # single-alias conjuncts were embedded in access paths

        for conjunct in expensive_conjuncts:
            refs = exprutil.aliases_referenced(conjunct) & local_aliases
            pending.append(
                PendingFilter(
                    conjunct,
                    refs,
                    conjunct_selectivity(conjunct, stats_ctx),
                    self._cm.predicate_eval + self._expensive_call_cost(conjunct),
                )
            )

        for conjunct in subquery_conjuncts:
            pending.append(
                self._subquery_filter(conjunct, block, stats_ctx, budget)
            )

        memo = self.memo
        join_key: Optional[str] = None
        plan: Optional[Plan] = None
        if memo is not None:
            join_key = _join_core_key(block, local_aliases, self._dp_threshold)
            plan = memo.join_get(join_key)
        if plan is None:
            enumerator = JoinOrderEnumerator(
                relations,
                join_conjuncts,
                pending,
                stats_ctx,
                cm,
                self._dp_threshold,
                budget,
            )
            plan = enumerator.best_plan()
            self.counters.join_orders_considered += 1
            if memo is not None and join_key is not None and (
                budget is None or plan.cost <= budget
            ):
                memo.join_put(join_key, plan)

        if block.rownum_limit is not None:
            fraction = min(
                1.0, block.rownum_limit / max(plan.cardinality, 1.0)
            )
            card = min(plan.cardinality, float(block.rownum_limit))
            plan = Limit(
                plan, block.rownum_limit, _stopkey_cost(plan, fraction), card
            )

        needs_grouping = bool(block.group_by) or block.has_aggregates
        if needs_grouping:
            plan = self._add_group_by(block, plan, stats_ctx)

        windows = self._collect_windows(block)
        if windows:
            cost = plan.cost + cm.sort_cost(plan.cardinality) * len(windows) \
                + plan.cardinality * cm.window_row * len(windows)
            plan = WindowCompute(plan, windows, cost, plan.cardinality)

        plan = self._add_project(block, plan, stats_ctx, budget)

        if block.distinct:
            card = self._distinct_cardinality(block, plan, stats_ctx)
            plan = Distinct(
                plan, plan.cost + cm.hash_build_cost(plan.cardinality), card
            )

        if block.order_by:
            plan = Sort(
                plan,
                block.order_by,
                plan.cost + cm.sort_cost(plan.cardinality),
                plan.cardinality,
            )

        if budget is not None and plan.cost > budget:
            raise CostBudgetExceeded(
                f"block {block.name} cost {plan.cost:.0f} exceeds budget"
            )
        return plan

    # -- views -------------------------------------------------------------------

    def _plan_view(
        self,
        item: FromItem,
        block: QueryBlock,
        plain: list[ast.Expr],
        stats_ctx: BlockStatsContext,
        budget: Optional[float],
    ) -> ViewScan:
        subplan = self._optimize_node(item.subquery, budget)
        correlation_keys = sorted({
            (ref.qualifier, ref.name)
            for ref in item.subquery.correlation_refs()
            if ref.qualifier
        })
        lateral_refs = {
            qualifier for qualifier, _name in correlation_keys
            if qualifier in block.aliases()
        }
        local = [
            c for c in plain
            if item.is_inner
            and exprutil.aliases_referenced(c) & block.aliases() <= {item.alias}
            and item.alias in exprutil.aliases_referenced(c)
        ]
        sel = conjuncts_selectivity(local, stats_ctx)
        cm = self._cm
        if lateral_refs:
            # Re-executed per outer row: cost is per probe.
            cost = subplan.cost + subplan.cardinality * cm.pipeline_row
        else:
            cost = subplan.cost + subplan.cardinality * cm.materialise_row
        card = subplan.cardinality * sel
        return ViewScan(
            item.alias,
            subplan,
            item.output_columns(),
            lateral_refs,
            local,
            cost,
            card,
            correlation_keys=correlation_keys,
        )

    def _derive_view_stats(self, node: QueryNode, plan: Plan) -> TableStats:
        """Synthesise statistics for a derived table from its sub-plan."""
        row_count = int(max(plan.cardinality, 0))
        stats = TableStats(row_count=row_count)
        if isinstance(node, QueryBlock):
            inner_stats: dict[str, Optional[TableStats]] = {}
            for item in node.from_items:
                if item.is_base_table:
                    inner_stats[item.alias] = self._table_stats(item.table_name)
            for name, item in zip(node.output_columns(), node.select_items):
                expr = item.expr
                col = ColumnStats(num_distinct=max(1, row_count // 2))
                if isinstance(expr, ast.ColumnRef) and expr.qualifier in inner_stats:
                    source = inner_stats[expr.qualifier]
                    source_col = source.column(expr.name) if source else None
                    if source_col is not None:
                        col = ColumnStats(
                            num_distinct=min(
                                source_col.num_distinct, max(row_count, 1)
                            ),
                            num_nulls=0,
                            min_value=source_col.min_value,
                            max_value=source_col.max_value,
                            histogram=source_col.histogram,
                        )
                elif ast.contains_aggregate(expr):
                    col = ColumnStats(num_distinct=max(1, row_count))
                stats.columns[name] = col
        else:
            for name in node.output_columns():
                stats.columns[name] = ColumnStats(
                    num_distinct=max(1, row_count // 2)
                )
        return stats

    # -- TIS subquery filters -------------------------------------------------------

    def _subquery_filter(
        self,
        conjunct: ast.Expr,
        block: QueryBlock,
        stats_ctx: BlockStatsContext,
        budget: Optional[float],
    ) -> PendingFilter:
        """Cost a conjunct containing subqueries, evaluated row-at-a-time
        (tuple iteration semantics) with correlation-value caching."""
        cm = self._cm
        per_row = cm.predicate_eval
        local_refs: set[str] = (
            exprutil.aliases_referenced(conjunct) & block.aliases()
        )
        for node in conjunct.walk():
            if not isinstance(node, ast.SubqueryExpr):
                continue
            if not isinstance(node.query, QueryNode):
                raise OptimizerError("subquery was not built into a query tree")
            subplan = self._optimize_node(node.query, budget)
            corr = [
                ref for ref in node.query.correlation_refs()
                if ref.qualifier in block.aliases()
            ]
            if not corr:
                # Uncorrelated: executed once, then probed from cache.
                per_row += cm.tis_cache_probe
                per_row += subplan.cost / 10_000.0  # amortised one-time cost
                continue
            ndv = 1.0
            outer_card = 1.0
            for ref in corr:
                col_stats = stats_ctx.column_stats(ref.qualifier, ref.name)
                tbl_stats = stats_ctx.table_stats(ref.qualifier)
                if col_stats is not None and col_stats.num_distinct:
                    ndv *= col_stats.num_distinct
                if tbl_stats is not None:
                    outer_card = max(outer_card, float(tbl_stats.row_count))
            cache_factor = min(1.0, ndv / max(outer_card, 1.0))
            per_row += cm.tis_cache_probe + subplan.cost * cache_factor
        return PendingFilter(
            conjunct,
            local_refs,
            self._subquery_conjunct_selectivity(conjunct, stats_ctx),
            per_row,
        )

    def _subquery_conjunct_selectivity(
        self, conjunct: ast.Expr, stats_ctx: BlockStatsContext
    ) -> float:
        """Selectivity of a subquery conjunct; sharper than the generic
        defaults when it is a bare ``col IN (subquery)``: the match
        probability is |subquery| / NDV(col)."""
        if (
            isinstance(conjunct, ast.SubqueryExpr)
            and conjunct.kind == "IN"
            and isinstance(conjunct.left, ast.ColumnRef)
            and conjunct.left.qualifier
            and isinstance(conjunct.query, QueryNode)
        ):
            col_stats = stats_ctx.column_stats(
                conjunct.left.qualifier, conjunct.left.name
            )
            if col_stats is not None and col_stats.num_distinct:
                try:
                    subplan = self._optimize_node(conjunct.query, None)
                except OptimizerError:
                    subplan = None
                if subplan is not None:
                    # assume subquery values overlap the column's domain
                    sel = min(
                        1.0, subplan.cardinality / col_stats.num_distinct
                    )
                    sel = max(sel, 1e-4)
                    return (1.0 - sel) if conjunct.negated else sel
        return conjunct_selectivity(conjunct, stats_ctx)

    # -- post-join stages -------------------------------------------------------------

    def _add_group_by(
        self, block: QueryBlock, plan: Plan, stats_ctx: BlockStatsContext
    ) -> Plan:
        cm = self._cm
        aggregates = _collect_aggregate_calls(block)
        groups = self._group_cardinality(block.group_by, plan, stats_ctx)
        n_sets = len(block.grouping_sets) if block.grouping_sets else 1
        if block.grouping_sets:
            # one aggregation pass per set; output is the per-set sum,
            # roughly bounded by n_sets * full-grouping cardinality
            groups = sum(
                self._group_cardinality(
                    [block.group_by[i] for i in s], plan, stats_ctx
                )
                for s in block.grouping_sets
            )
        cost = (
            plan.cost
            + plan.cardinality * cm.agg_row * max(len(aggregates), 1) * n_sets
            + groups * cm.pipeline_row
        )
        plan = GroupBy(plan, block.group_by, aggregates, cost, groups,
                       grouping_sets=block.grouping_sets)
        if block.having_conjuncts:
            sel = 1.0
            for conjunct in block.having_conjuncts:
                sel *= conjunct_selectivity(conjunct, stats_ctx)
            plan = Filter(
                plan,
                block.having_conjuncts,
                plan.cost
                + plan.cardinality * cm.predicate_eval
                * len(block.having_conjuncts),
                plan.cardinality * sel,
            )
        return plan

    def _group_cardinality(
        self,
        group_by: list[ast.Expr],
        plan: Plan,
        stats_ctx: BlockStatsContext,
    ) -> float:
        if not group_by:
            return 1.0
        ndv = 1.0
        for expr in group_by:
            if isinstance(expr, ast.ColumnRef) and expr.qualifier:
                col_stats = stats_ctx.column_stats(expr.qualifier, expr.name)
                ndv *= (
                    col_stats.num_distinct
                    if col_stats and col_stats.num_distinct
                    else max(plan.cardinality / 10.0, 1.0)
                )
            else:
                ndv *= max(plan.cardinality / 10.0, 1.0)
        return max(1.0, min(ndv, plan.cardinality))

    def _distinct_cardinality(
        self, block: QueryBlock, plan: Plan, stats_ctx: BlockStatsContext
    ) -> float:
        return self._group_cardinality(
            [item.expr for item in block.select_items], plan, stats_ctx
        )

    def _collect_windows(self, block: QueryBlock) -> list[ast.WindowFunc]:
        windows: list[ast.WindowFunc] = []
        seen: set[str] = set()
        from ..sql.render import render_expr

        for item in block.select_items:
            for node in item.expr.walk():
                if isinstance(node, ast.WindowFunc):
                    key = render_expr(node)
                    if key not in seen:
                        seen.add(key)
                        windows.append(node)
        return windows

    def _add_project(
        self,
        block: QueryBlock,
        plan: Plan,
        stats_ctx: BlockStatsContext,
        budget: Optional[float],
    ) -> Plan:
        cm = self._cm
        cost = plan.cost + plan.cardinality * cm.pipeline_row
        for item in block.select_items:
            for node in item.expr.walk():
                if isinstance(node, ast.SubqueryExpr) and isinstance(
                    node.query, QueryNode
                ):
                    subplan = self._optimize_node(node.query, budget)
                    cost += plan.cardinality * cm.tis_cache_probe \
                        + subplan.cost
                if isinstance(node, ast.FuncCall) and \
                        self._catalog.is_expensive_function(node.name):
                    cost += plan.cardinality * self._catalog.function_cost(
                        node.name
                    )
        return Project(plan, block.select_items, cost, plan.cardinality)

    def _expensive_call_cost(self, expr: ast.Expr) -> float:
        """Total per-row cost of expensive function calls in *expr*."""
        cost = 0.0
        for node in expr.walk():
            if isinstance(node, ast.FuncCall) and \
                    self._catalog.is_expensive_function(node.name):
                cost += self._catalog.function_cost(node.name)
        return cost

    # -- statistics access ---------------------------------------------------------

    def _table_stats(self, table_name: str) -> Optional[TableStats]:
        stats = self._statistics.get(table_name)
        if stats is not None:
            return stats
        if self._stats_sampler is not None:
            return self._stats_sampler(table_name)
        return None


def _join_core_key(
    block: QueryBlock, local_aliases: set[str], dp_threshold: int
) -> str:
    """Memo key for a block's *join core*: everything that feeds access-path
    selection and :class:`JoinOrderEnumerator`.  From-items (alias, join
    type, source, ON conjuncts, predecessor constraints) and the full WHERE
    conjunct set are included; post-join clauses (select list, GROUP BY,
    ORDER BY, ROWNUM) deliberately are not — states differing only there
    share one enumeration.  Including *all* WHERE conjuncts over-keys
    slightly (subquery/expensive conjuncts only shape pending filters) in
    exchange for an obviously safe key.
    """
    from ..sql.render import render_expr

    parts: list[str] = [f"dp={dp_threshold}"]
    for item in block.from_items:
        source = (
            item.table_name if item.is_base_table else signature(item.subquery)
        )
        on = "&".join(render_expr(c) for c in item.join_conjuncts)
        preds = ",".join(sorted(item.required_predecessors() & local_aliases))
        parts.append(f"{item.alias}|{item.join_type}|{source}|{on}|{preds}")
    parts.append(
        "where:" + "&".join(
            sorted(render_expr(c) for c in block.where_conjuncts)
        )
    )
    return "\n".join(parts)


def _stopkey_cost(plan: Plan, fraction: float) -> float:
    """Cost of *plan* when only a *fraction* of its output is consumed
    (COUNT STOPKEY).  Blocking operators below the stop key must still run
    to completion; streaming operators scale with the consumed fraction."""
    from .plans import (
        Distinct as _Distinct,
        Filter as _Filter,
        GroupBy as _GroupBy,
        HashJoin as _HashJoin,
        Limit as _Limit,
        MergeJoin as _MergeJoin,
        NestedLoopJoin as _NLJoin,
        Project as _Project,
        SetOp as _SetOp,
        Sort as _Sort,
        ViewScan as _ViewScan,
        WindowCompute as _Window,
    )

    if isinstance(plan, (_Sort, _GroupBy, _Distinct, _SetOp, _Window)):
        return plan.cost
    if isinstance(plan, (_Filter, _Project, _Limit, _ViewScan)):
        child = plan.children()[0]
        own = max(plan.cost - child.cost, 0.0)
        return own * fraction + _stopkey_cost(child, fraction)
    if isinstance(plan, _NLJoin):
        own = max(plan.cost - plan.left.cost, 0.0)
        return own * fraction + _stopkey_cost(plan.left, fraction)
    if isinstance(plan, (_HashJoin, _MergeJoin)):
        own = max(plan.cost - plan.left.cost - plan.right.cost, 0.0)
        return (
            own * fraction
            + _stopkey_cost(plan.left, fraction)
            + plan.right.cost
        )
    return plan.cost * fraction


def _collect_aggregate_calls(block: QueryBlock) -> list[ast.FuncCall]:
    calls: list[ast.FuncCall] = []
    seen: set[str] = set()
    from ..sql.render import render_expr

    def collect(expr: ast.Expr) -> None:
        if isinstance(expr, ast.WindowFunc):
            return
        if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
            key = render_expr(expr)
            if key not in seen:
                seen.add(key)
                calls.append(expr)
            return
        for child in expr.children():
            collect(child)

    for item in block.select_items:
        collect(item.expr)
    for conjunct in block.having_conjuncts:
        collect(conjunct)
    for order in block.order_by:
        collect(order.expr)
    return calls
