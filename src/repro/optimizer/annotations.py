"""Reuse of query sub-tree cost annotations (§3.4.2).

Optimizing one transformation state re-optimizes only the query blocks a
transformation touched; all other blocks' plans and costs are *cost
annotations* reusable across states.  The store is keyed by the block's
structural signature (its deterministic SQL rendering), so two deep
copies of the same sub-tree — or the same untransformed subquery
appearing in several states, as in Table 1 of the paper — share one
optimization.

Per §3.4.3, annotations are the one optimizer structure that must survive
the per-state memory release, so the store lives outside any single
optimization pass and is explicitly cleared by the framework when a
transformation decision is final.

The annotation store is statement-scoped.  Its cross-statement
generalization is the subplan memo (:mod:`repro.optimizer.memo`), which
uses the same structural-signature keys but survives hard parses and is
invalidated by catalog/statistics version bumps; on a memo hit the plan
is promoted into this store so the rest of the statement reuses it
through the normal annotation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .plans import Plan


@dataclass
class AnnotationStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0


class AnnotationStore:
    """Signature-keyed cache of optimized plans (cost annotations)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._plans: dict[str, Plan] = {}
        self.stats = AnnotationStats()

    def get(self, sig: str) -> Optional[Plan]:
        if not self.enabled:
            return None
        plan = self._plans.get(sig)
        if plan is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return plan

    def put(self, sig: str, plan: Plan) -> None:
        if not self.enabled:
            return
        self.stats.stores += 1
        self._plans[sig] = plan

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)
