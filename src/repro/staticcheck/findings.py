"""The analyzer's finding record and its stable fingerprint.

A fingerprint deliberately excludes line numbers: baselines must survive
unrelated edits that shift code up or down a file.  It is built from the
rule id, the repo-relative path, the enclosing scope
(``Class.method`` / function / ``<module>``), and a short rule-specific
detail slug (``read:self.queue``, ``raise:OSError``, ``cycle:A->B->A``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.diagnostics import Diagnostic


@dataclass(frozen=True)
class Finding:
    """One static-analysis violation."""

    rule: str
    message: str
    relpath: str
    lineno: int
    scope: str
    detail: str
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.relpath}::{self.scope}::{self.detail}"

    @property
    def location(self) -> str:
        return f"{self.relpath}:{self.lineno}"

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            rule=self.rule,
            severity=self.severity,
            message=f"{self.location}: {self.message}",
            node=self.scope,
        )

    def format(self) -> str:
        return f"{self.location}: {self.rule} [{self.scope}]: {self.message}"
