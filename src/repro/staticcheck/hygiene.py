"""Metrics and trace hygiene rules.

**metrics.unused** — a counter (histogram) name passed to
``*.counter("…")`` (``*.histogram("…")``) registers the metric; if no
site in the project ever increments (records) it — chained
``.counter("x").inc()``, or through a local / ``self`` binding — the
registration is dead weight that shows up in every snapshot as a
permanently-zero series, which reads as "this path never runs" when the
truth is "nobody wired the increment".

**trace.undocumented** — every literal event kind passed to
``*.emit("kind", …)`` must appear in the tracing module's docstring
(the module that defines ``Tracer``), which is the documented event
vocabulary consumers grep against.  Dynamic names are skipped.
"""

from __future__ import annotations

import ast
import re

from .findings import Finding
from .model import Project

#: registration method -> the method that counts as "using" the metric
_METRIC_KINDS = {"counter": "inc", "histogram": "record"}

_DOC_NAME_RE = re.compile(r"``([A-Za-z_][\w.]*)``|(?<!`)`([A-Za-z_][\w.]*)`(?!`)")


def _literal_arg(call: ast.Call) -> str | None:
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


def _registration(call: ast.Call) -> tuple[str, str] | None:
    """``X.counter("name")`` -> (kind, name)."""
    if isinstance(call.func, ast.Attribute) \
            and call.func.attr in _METRIC_KINDS:
        name = _literal_arg(call)
        if name is not None:
            return call.func.attr, name
    return None


def _check_metrics(project: Project) -> list[Finding]:
    registered: dict[tuple[str, str], tuple] = {}  # (kind, name) -> site
    used: set[tuple[str, str]] = set()
    #: local/attribute binding name -> metrics it may hold
    bindings: dict[str, set[tuple[str, str]]] = {}

    def bind_target(target: ast.expr, metric: tuple[str, str]) -> None:
        if isinstance(target, ast.Name):
            bindings.setdefault(target.id, set()).add(metric)
        elif isinstance(target, ast.Attribute):
            bindings.setdefault(target.attr, set()).add(metric)

    for module, owner, func in project.iter_functions():
        scope = f"{owner.name}.{func.name}" if owner else func.name
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            reg = _registration(node)
            if reg is not None:
                registered.setdefault(
                    reg, (module, node.lineno, scope, func))
            if not isinstance(node.func, ast.Attribute):
                continue
            use_of = {kind for kind, use in _METRIC_KINDS.items()
                      if use == node.func.attr}
            if not use_of:
                continue
            target = node.func.value
            if isinstance(target, ast.Call):
                inner = _registration(target)
                if inner is not None and inner[0] in use_of:
                    used.add(inner)
            elif isinstance(target, (ast.Name, ast.Attribute)):
                key = target.id if isinstance(target, ast.Name) \
                    else target.attr
                for metric in bindings.get(key, set()):
                    if metric[0] in use_of:
                        used.add(metric)
    # second pass: bindings may be created after (or in another module
    # than) the .inc sites — collect them first, then re-scan uses
    for module, owner, func in project.iter_functions():
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                reg = _registration(node.value)
                if reg is not None:
                    for target in node.targets:
                        bind_target(target, reg)
    for module, owner, func in project.iter_functions():
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            use_of = {kind for kind, use in _METRIC_KINDS.items()
                      if use == node.func.attr}
            target = node.func.value
            if use_of and isinstance(target, (ast.Name, ast.Attribute)):
                key = target.id if isinstance(target, ast.Name) \
                    else target.attr
                for metric in bindings.get(key, set()):
                    if metric[0] in use_of:
                        used.add(metric)

    findings = []
    rule = "metrics.unused"
    for (kind, name), (module, lineno, scope, func) in sorted(
            registered.items(), key=lambda kv: kv[0]):
        if (kind, name) in used:
            continue
        if project.suppressed(module, lineno, rule, func):
            continue
        action = "incremented" if kind == "counter" else "recorded"
        findings.append(Finding(
            rule=rule,
            message=(
                f"{kind} {name!r} is registered but never {action} — "
                f"a permanently-zero series in every snapshot"
            ),
            relpath=module.relpath,
            lineno=lineno,
            scope=scope,
            detail=f"{kind}:{name}",
        ))
    return findings


def _documented_kinds(project: Project) -> set[str] | None:
    for info in project.all_classes:
        if info.name == "Tracer":
            doc = info.module.docstring()
            kinds = set()
            for match in _DOC_NAME_RE.finditer(doc):
                kinds.add(match.group(1) or match.group(2))
            return kinds
    return None


def _check_trace(project: Project) -> list[Finding]:
    documented = _documented_kinds(project)
    if documented is None:
        return []
    findings = []
    rule = "trace.undocumented"
    seen: set[str] = set()
    for module, owner, func in project.iter_functions():
        scope = f"{owner.name}.{func.name}" if owner else func.name
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"):
                continue
            kind = _literal_arg(node)
            if kind is None or kind in documented or kind in seen:
                continue
            if project.suppressed(module, node.lineno, rule, func):
                continue
            seen.add(kind)
            findings.append(Finding(
                rule=rule,
                message=(
                    f"trace event kind {kind!r} is emitted but not "
                    f"documented in the tracing module docstring"
                ),
                relpath=module.relpath,
                lineno=node.lineno,
                scope=scope,
                detail=f"kind:{kind}",
            ))
    return findings


def check_hygiene(project: Project) -> list[Finding]:
    return _check_metrics(project) + _check_trace(project)
