"""Rule registry, report assembly, and the command-line entry point.

``python -m repro staticcheck`` (and the shell's ``.staticcheck`` meta
command) run every rule family over ``src/repro`` and exit non-zero on
any finding not covered by the committed baseline — the same contract
the CI ``staticcheck`` job enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .baseline import Baseline
from .coverage import check_coverage
from .findings import Finding
from .hygiene import check_hygiene
from .lockrules import check_locks
from .model import Project
from .taxonomy import check_taxonomy

RULE_FAMILIES: dict[str, Callable[[Project], list[Finding]]] = {
    "locks": check_locks,
    "coverage": check_coverage,
    "taxonomy": check_taxonomy,
    "hygiene": check_hygiene,
}


@dataclass
class StaticCheckReport:
    """Everything one analyzer run produced."""

    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baselined: list[tuple[Finding, str]] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new

    def format(self, verbose: bool = False) -> str:
        lines = []
        for finding in self.new:
            lines.append(finding.format())
        if verbose:
            for finding, reason in self.baselined:
                lines.append(f"{finding.format()} [baselined: {reason}]")
        for fingerprint in self.stale:
            lines.append(
                f"warning: stale baseline entry (no longer fires): "
                f"{fingerprint}"
            )
        lines.append(
            f"staticcheck: {len(self.findings)} finding(s) — "
            f"{len(self.new)} new, {len(self.baselined)} baselined, "
            f"{len(self.stale)} stale baseline entr"
            f"{'y' if len(self.stale) == 1 else 'ies'}"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "new": [vars(f) for f in self.new],
            "baselined": [
                {**vars(f), "reason": reason}
                for f, reason in self.baselined
            ],
            "stale": self.stale,
        }, indent=2)


def _default_package_root() -> Path:
    return Path(__file__).resolve().parents[1]


def _default_repo_root(package_root: Path) -> Path:
    # <repo>/src/repro -> <repo>; fall back to the package itself
    parent = package_root.parent
    return parent.parent if parent.name == "src" else package_root


def run_project(
    root: Optional[Path] = None,
    repo_root: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    families: Optional[list[str]] = None,
) -> StaticCheckReport:
    """Run the analyzer over the package at *root*."""
    package_root = Path(root) if root else _default_package_root()
    repo = Path(repo_root) if repo_root else _default_repo_root(package_root)
    project = Project(package_root, repo_root=repo)
    findings: list[Finding] = []
    for name in (families or list(RULE_FAMILIES)):
        findings.extend(RULE_FAMILIES[name](project))
    findings.sort(key=lambda f: (f.relpath, f.lineno, f.rule, f.detail))
    report = StaticCheckReport(findings=findings)
    baseline = baseline or Baseline()
    report.new, report.baselined, report.stale = baseline.split(findings)
    if families is not None and set(families) != set(RULE_FAMILIES):
        # a partial run cannot tell stale from not-executed
        report.stale = []
    return report


USAGE = """\
usage: repro staticcheck [--root DIR] [--baseline FILE] [--json]
                         [--verbose] [--write-baseline]
                         [--family NAME[,NAME...]]

Project-aware static analysis over src/repro: lock discipline,
lock-order (deadlock) cycles, cancellation/fault-point coverage,
error-taxonomy, and metrics/trace hygiene.  Exits 1 on any finding not
in the committed baseline.
"""


def main(argv: Optional[list[str]] = None,
         echo: Callable[[str], None] = print) -> int:
    argv = list(argv or [])
    root: Optional[Path] = None
    baseline_path: Optional[Path] = None
    as_json = False
    verbose = False
    write = False
    families: Optional[list[str]] = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("-h", "--help"):
            echo(USAGE)
            return 0
        if arg == "--json":
            as_json = True
        elif arg == "--verbose":
            verbose = True
        elif arg == "--write-baseline":
            write = True
        elif arg in ("--root", "--baseline", "--family"):
            if i + 1 >= len(argv):
                echo(f"error: {arg} expects a value")
                return 2
            value = argv[i + 1]
            if arg == "--root":
                root = Path(value)
            elif arg == "--baseline":
                baseline_path = Path(value)
            else:
                families = [f.strip() for f in value.split(",") if f.strip()]
                unknown = set(families) - set(RULE_FAMILIES)
                if unknown:
                    echo(f"error: unknown rule families: "
                         f"{', '.join(sorted(unknown))} "
                         f"(known: {', '.join(RULE_FAMILIES)})")
                    return 2
            i += 1
        else:
            echo(f"error: unknown argument {arg!r}")
            echo(USAGE)
            return 2
        i += 1

    package_root = root or _default_package_root()
    repo_root = _default_repo_root(package_root)
    if baseline_path is None:
        baseline_path = repo_root / "staticcheck-baseline.json"
    baseline = Baseline.load(baseline_path)
    report = run_project(package_root, repo_root, baseline,
                         families=families)
    if write:
        baseline.write(baseline_path, report.findings)
        echo(f"wrote {len(report.findings)} fingerprint(s) to "
             f"{baseline_path}")
        return 0
    echo(report.to_json() if as_json else report.format(verbose=verbose))
    return 0 if report.ok else 1
