"""Cancellation and fault-point coverage rules (PR 4 / PR 6 contracts).

**cancel.poll** — a ``_run_*`` executor method that loops over a
*materialised* collection (a sorted list, grouped output, set-op branch
tuples — anything that is not a direct pipeline over ``self.rows(...)``)
must poll the :class:`~repro.resilience.CancelToken` somewhere in its
body: the loop cannot rely on a child generator's polls once the rows
have been drained into a list.  Pipelined loops are exempt because every
``next()`` reaches a polling leaf.

**fault.point** — the vector executor's operator set must stay closed
under the fault-injection contract: every name in ``VECTOR_OPERATORS``
has a ``_vec_<name>`` method and an ``executor.batch.<name>`` entry in
``BATCH_OPERATORS`` (and vice versa), and the module must actually
reference the ``executor.batch.`` control point so per-batch
fault/cancel metering cannot be dropped wholesale.  The same totality
applies to the subplan memo: every ``MEMO_POINTS`` entry must have a
call site, and ``repro.optimizer.memo`` must reference ``memo.lookup``.
"""

from __future__ import annotations

import ast
from typing import Optional

from .findings import Finding
from .model import ModuleInfo, Project

#: iterating one of these builtins is plan metadata, not a row stream
_SMALL_ITER_BUILTINS = {"range", "zip", "enumerate", "reversed"}


def _is_pipelined(iter_expr: ast.expr) -> bool:
    """True when the loop pulls rows straight from a child generator or
    iterates plan metadata — i.e. it is not a materialised row loop."""
    if isinstance(iter_expr, ast.Call):
        func = iter_expr.func
        if (isinstance(func, ast.Attribute) and func.attr == "rows"
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            return True
        if isinstance(func, ast.Name) and func.id in _SMALL_ITER_BUILTINS:
            return True
        return False
    # plan.branches / plan.windows and literal tuples are metadata
    return isinstance(iter_expr, (ast.Attribute, ast.Tuple, ast.Constant))


def _has_token_poll(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id == "check":
            return True
        if isinstance(callee, ast.Attribute) and callee.attr == "check":
            return True
    return False


def _check_cancel_polls(project: Project) -> list[Finding]:
    findings = []
    rule = "cancel.poll"
    for module, owner, func in project.iter_functions():
        if owner is None or not func.name.startswith("_run_"):
            continue
        loops = [
            node for node in ast.walk(func)
            if isinstance(node, ast.For) and not _is_pipelined(node.iter)
        ]
        if not loops or _has_token_poll(func):
            continue
        if project.suppressed(module, loops[0].lineno, rule, func):
            continue
        findings.append(Finding(
            rule=rule,
            message=(
                f"{func.name} loops over materialised rows without a "
                f"CancelToken poll — a long sort/aggregate output cannot "
                f"be cancelled"
            ),
            relpath=module.relpath,
            lineno=loops[0].lineno,
            scope=f"{owner.name}.{func.name}",
            detail=f"poll:{func.name}",
        ))
    return findings


def _string_tuple(value: ast.expr) -> Optional[list[tuple[str, int]]]:
    """Literal tuple/set/frozenset of strings -> [(name, lineno)]."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.id == "frozenset" and value.args:
        value = value.args[0]
    if not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return None
    out = []
    for elt in value.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append((elt.value, elt.lineno))
    return out


def _find_operator_table(
    project: Project, name: str
) -> Optional[tuple[ModuleInfo, ast.Assign, list[tuple[str, int]]]]:
    for module in project.modules:
        for node in module.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                names = _string_tuple(node.value)
                if names is not None:
                    return module, node, names
    return None


def _module_mentions(module: ModuleInfo, needle: str) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and needle in node.value:
            return True
    return False


def _check_fault_points(project: Project) -> list[Finding]:
    findings = []
    rule = "fault.point"
    vector = _find_operator_table(project, "VECTOR_OPERATORS")
    batch = _find_operator_table(project, "BATCH_OPERATORS")
    if vector is None:
        return findings
    vec_module, vec_node, vec_ops = vector
    declared = {op for op, _ in vec_ops}

    vec_methods: dict[str, tuple[str, ast.FunctionDef]] = {}
    for info in project.all_classes:
        if info.module is not vec_module:
            continue
        for name, method in info.methods.items():
            if name.startswith("_vec_"):
                vec_methods[name[len("_vec_"):]] = (info.name, method)

    for op, lineno in vec_ops:
        if op.lower() not in vec_methods:
            findings.append(Finding(
                rule=rule,
                message=f"operator {op!r} is declared in VECTOR_OPERATORS "
                        f"but has no _vec_{op.lower()} implementation",
                relpath=vec_module.relpath, lineno=lineno,
                scope="VECTOR_OPERATORS", detail=f"missing-method:{op}",
            ))
    lowered = {op.lower(): op for op in declared}
    for suffix, (cls, method) in sorted(vec_methods.items()):
        if suffix in lowered:
            continue
        if project.suppressed(vec_module, method.lineno, rule, method):
            continue
        findings.append(Finding(
            rule=rule,
            message=(
                f"_vec_{suffix} is not declared in VECTOR_OPERATORS — the "
                f"operator would run without an executor.batch.<Op> fault "
                f"point or per-batch cancellation metering"
            ),
            relpath=vec_module.relpath, lineno=method.lineno,
            scope=f"{cls}._vec_{suffix}", detail=f"undeclared:_vec_{suffix}",
        ))

    if batch is not None:
        batch_module, batch_node, batch_ops = batch
        batch_names = {op for op, _ in batch_ops}
        for op in sorted(declared - batch_names):
            findings.append(Finding(
                rule=rule,
                message=f"vector operator {op!r} has no "
                        f"executor.batch.{op} entry in BATCH_OPERATORS",
                relpath=batch_module.relpath, lineno=batch_node.lineno,
                scope="BATCH_OPERATORS", detail=f"missing-fault-point:{op}",
            ))
        for op, lineno in batch_ops:
            if op not in declared:
                findings.append(Finding(
                    rule=rule,
                    message=f"BATCH_OPERATORS entry {op!r} matches no "
                            f"declared vector operator (stale fault point)",
                    relpath=batch_module.relpath, lineno=lineno,
                    scope="BATCH_OPERATORS", detail=f"stale-fault-point:{op}",
                ))

    if vec_methods and not _module_mentions(vec_module, "executor.batch."):
        findings.append(Finding(
            rule=rule,
            message="vector executor module never references the "
                    "'executor.batch.' control point — per-batch fault "
                    "injection and cancellation metering are disconnected",
            relpath=vec_module.relpath, lineno=vec_node.lineno,
            scope=vec_module.name, detail="no-batch-control-point",
        ))
    findings.extend(_check_memo_points(project))
    return findings


def _check_memo_points(project: Project) -> list[Finding]:
    """MEMO_POINTS stays total: every declared ``memo.*`` point must be
    referenced by a module other than its declaration (a real call site
    exists), and the subplan-memo module must reference ``memo.lookup``
    so its lookup path cannot silently drop the fault hook."""
    findings = []
    rule = "fault.point"
    table = _find_operator_table(project, "MEMO_POINTS")
    if table is None:
        return findings
    decl_module, decl_node, points = table
    for point, lineno in points:
        referenced = any(
            module is not decl_module and _module_mentions(module, point)
            for module in project.modules
        )
        if not referenced:
            findings.append(Finding(
                rule=rule,
                message=f"MEMO_POINTS entry {point!r} has no call site "
                        f"outside its declaration (stale fault point)",
                relpath=decl_module.relpath, lineno=lineno,
                scope="MEMO_POINTS", detail=f"stale-fault-point:{point}",
            ))
    for module in project.modules:
        if module.name != "repro.optimizer.memo":
            continue
        if not _module_mentions(module, "memo.lookup"):
            findings.append(Finding(
                rule=rule,
                message="repro.optimizer.memo never references the "
                        "'memo.lookup' control point — memo fault "
                        "injection is disconnected from the lookup path",
                relpath=module.relpath, lineno=1,
                scope=module.name, detail="no-memo-control-point",
            ))
    return findings


def check_coverage(project: Project) -> list[Finding]:
    return _check_cancel_polls(project) + _check_fault_points(project)
