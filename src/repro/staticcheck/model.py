"""Project model for the static analyzer.

Loads every module under a package root into ASTs and builds the
indexes the rules share:

* a class index (name -> :class:`ClassInfo`) with base-class links, so
  the taxonomy rule can answer "is this a ReproError subclass?";
* per-class attribute types, recovered from ``__init__`` assignments
  and annotations (``self.x = ClassName(...)``,
  ``self.x: dict[str, ClassName] = {}``), powering the light type
  inference the lock rules need to resolve ``session.closed``-style
  cross-object accesses;
* per-class lock attributes (``self._lock = threading.Lock()``);
* suppression comments (``# staticcheck: ignore[rule] reason`` on the
  flagged line or on the enclosing ``def``/``class`` line, and
  ``# staticcheck: allow-raise`` on a class definition to exempt an
  internal control-flow exception from the taxonomy rule).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*(?:ignore\[(?P<rules>[a-z.\-, ]+)\]|(?P<allow>allow-raise))"
)

#: containers whose subscript annotation names an element type we track
_SEQ_CONTAINERS = {
    "list", "List", "set", "Set", "frozenset", "FrozenSet",
    "deque", "Deque", "tuple", "Tuple", "Iterable", "Iterator", "Sequence",
}
_MAP_CONTAINERS = {"dict", "Dict", "OrderedDict", "defaultdict", "Mapping"}

_LOCK_FACTORIES = {"Lock", "RLock"}


@dataclass(frozen=True)
class TypeRef:
    """A resolved type: a project class, a container of one, or unknown."""

    scalar: Optional[str] = None
    #: element type for sequences, *value* type for mappings
    elem: Optional[str] = None

    @property
    def known(self) -> bool:
        return self.scalar is not None or self.elem is not None


UNKNOWN = TypeRef()


class Suppressions:
    """Per-module suppression comments, keyed by source line."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.allow_raise_lines: set[int] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            if match.group("allow"):
                self.allow_raise_lines.add(lineno)
                continue
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            self.by_line.setdefault(lineno, set()).update(rules)

    def suppressed(self, lineno: int, rule: str) -> bool:
        rules = self.by_line.get(lineno)
        return bool(rules) and (rule in rules or "*" in rules)


@dataclass
class ClassInfo:
    """One class definition and the facts the rules need about it."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: attribute name -> recovered type (from ``__init__`` / annotations)
    attr_types: dict[str, TypeRef] = field(default_factory=dict)
    #: attributes holding a ``threading.Lock`` / ``RLock``
    lock_attrs: dict[str, str] = field(default_factory=dict)  # attr -> kind
    allow_raise: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.name}"


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str  # dotted, e.g. "repro.server.sessions"
    path: Path
    relpath: str  # repo-relative posix path used in fingerprints
    tree: ast.Module
    source: str
    suppressions: Suppressions

    def docstring(self) -> str:
        return ast.get_docstring(self.tree) or ""


def _lock_kind(value: ast.expr) -> Optional[str]:
    """``threading.Lock()`` / ``RLock()`` (or bare ``Lock()``) -> kind."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        return func.attr
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id
    return None


class Project:
    """All modules under one package root, plus the shared indexes."""

    def __init__(self, root: Path, repo_root: Optional[Path] = None):
        self.root = Path(root)
        self.repo_root = Path(repo_root) if repo_root else self.root
        self.modules: list[ModuleInfo] = []
        self.classes: dict[str, ClassInfo] = {}
        self.all_classes: list[ClassInfo] = []
        self._load()
        self._index_classes()

    # -- loading -------------------------------------------------------------

    def _load(self) -> None:
        package = self.root.name
        for path in sorted(self.root.rglob("*.py")):
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
            rel_to_root = path.relative_to(self.root)
            parts = (package, *rel_to_root.parts[:-1])
            stem = rel_to_root.stem
            dotted = ".".join(parts if stem == "__init__" else (*parts, stem))
            try:
                relpath = path.relative_to(self.repo_root).as_posix()
            except ValueError:
                relpath = path.as_posix()
            self.modules.append(ModuleInfo(
                name=dotted,
                path=path,
                relpath=relpath,
                tree=tree,
                source=source,
                suppressions=Suppressions(source),
            ))

    def _index_classes(self) -> None:
        for module in self.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = ClassInfo(name=node.name, module=module, node=node)
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        info.bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        info.bases.append(base.attr)
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        info.methods[item.name] = item
                info.allow_raise = (
                    node.lineno in module.suppressions.allow_raise_lines
                )
                self.all_classes.append(info)
                # first definition wins on (rare) simple-name collisions
                self.classes.setdefault(node.name, info)
        # attribute typing needs the full class index (forward refs)
        for info in self.all_classes:
            self._collect_attrs(info)

    def _collect_attrs(self, info: ClassInfo) -> None:
        """Recover ``self.x`` types and lock attributes from ``__init__``."""
        init = info.methods.get("__init__")
        if init is None:
            return
        param_types: dict[str, TypeRef] = {}
        for arg in [*init.args.posonlyargs, *init.args.args,
                    *init.args.kwonlyargs]:
            if arg.annotation is not None:
                ref = self.type_from_annotation(arg.annotation)
                if ref.known:
                    param_types[arg.arg] = ref
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if _is_self_attr(target):
                    info.attr_types[target.attr] = self.type_from_annotation(
                        stmt.annotation
                    )
                    if stmt.value is not None:
                        kind = _lock_kind(stmt.value)
                        if kind:
                            info.lock_attrs[target.attr] = kind
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not _is_self_attr(target):
                    continue
                kind = _lock_kind(stmt.value)
                if kind:
                    info.lock_attrs[target.attr] = kind
                    continue
                ref = self.type_from_value(stmt.value)
                if not ref.known and isinstance(stmt.value, ast.Name):
                    # ``self.x = x`` where the ctor parameter is annotated
                    ref = param_types.get(stmt.value.id, UNKNOWN)
                if ref.known and target.attr not in info.attr_types:
                    info.attr_types[target.attr] = ref

    # -- type recovery -------------------------------------------------------

    def type_from_annotation(self, ann: ast.expr) -> TypeRef:
        if isinstance(ann, ast.Name):
            return TypeRef(scalar=ann.id) if ann.id in self.classes else UNKNOWN
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                return self.type_from_annotation(
                    ast.parse(ann.value, mode="eval").body
                )
            except SyntaxError:
                return UNKNOWN
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self.type_from_annotation(ann.left)
            return left if left.known else self.type_from_annotation(ann.right)
        if isinstance(ann, ast.Subscript):
            head = ann.value
            head_name = head.id if isinstance(head, ast.Name) else (
                head.attr if isinstance(head, ast.Attribute) else None
            )
            slice_ = ann.slice
            if head_name == "Optional":
                return self.type_from_annotation(slice_)
            if head_name in _MAP_CONTAINERS:
                if isinstance(slice_, ast.Tuple) and len(slice_.elts) == 2:
                    value = self.type_from_annotation(slice_.elts[1])
                    return TypeRef(elem=value.scalar) if value.scalar else UNKNOWN
                return UNKNOWN
            if head_name in _SEQ_CONTAINERS:
                inner = slice_.elts[0] if isinstance(slice_, ast.Tuple) else slice_
                value = self.type_from_annotation(inner)
                return TypeRef(elem=value.scalar) if value.scalar else UNKNOWN
        return UNKNOWN

    def type_from_value(self, value: ast.expr) -> TypeRef:
        """Type of a ``self.x = <value>`` initialiser (constructors only)."""
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id in self.classes:
                return TypeRef(scalar=func.id)
            if isinstance(func, ast.Attribute) and func.attr in self.classes:
                return TypeRef(scalar=func.attr)
        return UNKNOWN

    # -- queries -------------------------------------------------------------

    def class_named(self, name: str) -> Optional[ClassInfo]:
        return self.classes.get(name)

    def is_subclass_of(self, name: str, ancestor: str) -> bool:
        """Transitive subclass check over the project class index."""
        seen: set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current == ancestor:
                return True
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info:
                stack.extend(info.bases)
        return False

    def iter_functions(
        self,
    ) -> Iterator[tuple[ModuleInfo, Optional[ClassInfo], ast.FunctionDef]]:
        """Every function/method with its module and owning class."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.FunctionDef):
                    yield module, None, node
        for info in self.all_classes:
            for method in info.methods.values():
                yield info.module, info, method

    def suppressed(
        self,
        module: ModuleInfo,
        lineno: int,
        rule: str,
        scope: Optional[ast.AST] = None,
    ) -> bool:
        """Line-level or enclosing-def-level suppression check."""
        if module.suppressions.suppressed(lineno, rule):
            return True
        return scope is not None and module.suppressions.suppressed(
            getattr(scope, "lineno", -1), rule
        )


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )
