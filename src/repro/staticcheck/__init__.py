"""Project-aware static analysis for the repro codebase.

``repro.staticcheck`` is an AST-based (stdlib-only) analyzer that
enforces the concurrency and robustness contracts the runtime layers
rely on but cannot themselves check on every interleaving:

* **lock discipline** — an attribute mutated under a class's lock
  anywhere must never be touched outside that lock;
* **lock order** — the inter-class lock acquisition graph must be
  acyclic (static deadlock detection);
* **cancellation / fault-point coverage** — every materialised row loop
  in an executor polls the :class:`~repro.resilience.CancelToken`, and
  every vector operator declares its ``executor.batch.<Op>`` fault
  point;
* **error taxonomy** — every project ``raise`` is a
  :class:`~repro.errors.ReproError`, and no broad handler silently
  swallows :class:`~repro.errors.VerificationError`;
* **metrics / trace hygiene** — no counter registered but never
  incremented, no trace event kind emitted but undocumented.

Findings are reported as :class:`repro.analysis.Diagnostic` objects.
Intentional violations are silenced inline
(``# staticcheck: ignore[rule] reason``) or carried in the committed
baseline file (``staticcheck-baseline.json``); anything else fails the
run — and the CI gate.
"""

from .baseline import Baseline
from .model import Project
from .runner import Finding, StaticCheckReport, main, run_project

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "StaticCheckReport",
    "main",
    "run_project",
]
