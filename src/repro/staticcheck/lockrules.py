"""Lock-discipline and lock-order rules.

**lock.discipline** — two passes over every function in the project:

1. *collect*: an attribute mutated while holding its owner's lock —
   ``with self._lock: self.hits += 1`` in the class itself, or
   cross-object ``with session.lock: session.closed = True`` anywhere —
   marks that attribute as **guarded** by that lock.
2. *flag*: any other access (read or write) to a guarded attribute that
   is not under the same object's guarding lock is a finding.  Accesses
   in the owning class's ``__init__`` (pre-publication) and on
   function-local freshly-constructed objects are exempt.

Object identity is tracked by light type inference
(:meth:`FunctionTypes.resolve`): parameter annotations, ``self``,
constructor assignments, ``dict[str, C]`` attribute annotations
propagated through ``.values()`` / ``.get()`` / ``list(...)`` and
``for`` targets.

**lock.order** — while a lock is held, acquiring another lock (directly
via a nested ``with``, or by calling a method that takes its own
class's lock) adds an edge to the inter-class lock graph.  A cycle is a
static deadlock and fails the run, as does re-acquiring a held
non-reentrant ``Lock``.
"""

from __future__ import annotations

import ast
from typing import Optional

from .findings import Finding
from .model import ClassInfo, ModuleInfo, Project, TypeRef, UNKNOWN

#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popleft", "remove", "setdefault", "update",
    "move_to_end",
}

#: builtins that return their (container) argument's shape
_PASSTHROUGH = {"list", "sorted", "tuple", "iter", "reversed", "set"}


class FunctionTypes:
    """Light flow-insensitive type environment for one function."""

    def __init__(self, project: Project, owner: Optional[ClassInfo],
                 func: ast.FunctionDef):
        self.project = project
        self.env: dict[str, TypeRef] = {}
        self.fresh: set[str] = set()
        if owner is not None:
            self.env["self"] = TypeRef(scalar=owner.name)
        for arg in [*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs]:
            if arg.annotation is not None:
                ref = project.type_from_annotation(arg.annotation)
                if ref.known:
                    self.env[arg.arg] = ref
        # two passes so forward references through locals settle
        for _ in range(2):
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        ref = self.resolve(node.value)
                        if ref.known:
                            self.env[target.id] = ref
                        if _is_constructor(node.value, project):
                            self.fresh.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name):
                        ref = project.type_from_annotation(node.annotation)
                        if ref.known:
                            self.env[node.target.id] = ref
                elif isinstance(node, (ast.For, ast.comprehension)):
                    target = node.target
                    if isinstance(target, ast.Name):
                        elem = self.resolve(node.iter).elem
                        if elem:
                            self.env[target.id] = TypeRef(scalar=elem)

    def resolve(self, expr: ast.expr) -> TypeRef:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.Attribute):
            base = self.resolve(expr.value)
            if base.scalar:
                info = self.project.class_named(base.scalar)
                if info:
                    return info.attr_types.get(expr.attr, UNKNOWN)
            return UNKNOWN
        if isinstance(expr, ast.Subscript):
            base = self.resolve(expr.value)
            return TypeRef(scalar=base.elem) if base.elem else UNKNOWN
        if isinstance(expr, ast.IfExp):
            body = self.resolve(expr.body)
            return body if body.known else self.resolve(expr.orelse)
        if isinstance(expr, ast.BoolOp) and expr.values:
            return self.resolve(expr.values[0])
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in self.project.classes:
                    return TypeRef(scalar=func.id)
                if func.id in _PASSTHROUGH and expr.args:
                    return self.resolve(expr.args[0])
            if isinstance(func, ast.Attribute):
                if func.attr in self.project.classes:
                    return TypeRef(scalar=func.attr)
                base = self.resolve(func.value)
                if func.attr in ("get", "pop") and base.elem:
                    return TypeRef(scalar=base.elem)
                if func.attr == "values" and base.elem:
                    return TypeRef(elem=base.elem)
                if func.attr == "copy":
                    return base
        return UNKNOWN


def _is_constructor(expr: ast.expr, project: Project) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in project.classes
    )


def _key(expr: ast.expr) -> str:
    """Identity key for 'same object' comparisons (textual)."""
    return ast.dump(expr)


#: one held lock: (class name, lock attr, object identity key)
Held = tuple[str, str, str]


class _LockWalker:
    """Shared traversal: visits every node of a function with the set of
    currently-held locks, resetting inside nested function bodies (a
    closure's body does not inherit the definition site's locks)."""

    def __init__(self, project: Project, types: FunctionTypes):
        self.project = project
        self.types = types

    def acquisitions(self, node: ast.With) -> list[Held]:
        found = []
        for item in node.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Attribute):
                continue
            owner = self.types.resolve(expr.value)
            if not owner.scalar:
                continue
            info = self.project.class_named(owner.scalar)
            if info and expr.attr in info.lock_attrs:
                found.append((owner.scalar, expr.attr, _key(expr.value)))
        return found

    def walk(self, body: list[ast.stmt], held: tuple[Held, ...]):
        for stmt in body:
            yield from self._walk_node(stmt, held)

    def _walk_node(self, node: ast.AST, held: tuple[Held, ...]):
        yield node, held
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                yield from self._walk_node(child, ())
            return
        if isinstance(node, ast.With):
            acquired = self.acquisitions(node)
            for item in node.items:
                yield from self._walk_node(item.context_expr, held)
            inner = held + tuple(a for a in acquired if a not in held)
            for child in node.body:
                yield from self._walk_node(child, inner)
            return
        for child in ast.iter_child_nodes(node):
            yield from self._walk_node(child, held)


def _mutations(node: ast.AST):
    """Yield ``(object expr, attr)`` for attribute mutations in *node*
    itself (not recursive): assignments, augmented assignments, item
    stores, deletes, and in-place mutator calls on an attribute."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr in _MUTATORS
                and isinstance(func.value, ast.Attribute)):
            yield func.value.value, func.value.attr
        return
    for target in targets:
        for t in _flatten_targets(target):
            if isinstance(t, ast.Attribute):
                yield t.value, t.attr
            elif isinstance(t, ast.Subscript) and isinstance(
                    t.value, ast.Attribute):
                yield t.value.value, t.value.attr


def _flatten_targets(target: ast.expr):
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    else:
        yield target


class LockAnalysis:
    """Runs both lock rules over a project."""

    def __init__(self, project: Project):
        self.project = project
        #: class -> attr -> guarding lock attr
        self.guarded: dict[str, dict[str, str]] = {}
        #: (class, method) -> own lock attrs acquired directly
        self.method_acquires: dict[tuple[str, str], set[str]] = {}
        self._types_cache: dict[int, FunctionTypes] = {}

    def _types(self, owner: Optional[ClassInfo],
               func: ast.FunctionDef) -> FunctionTypes:
        key = id(func)
        if key not in self._types_cache:
            self._types_cache[key] = FunctionTypes(self.project, owner, func)
        return self._types_cache[key]

    def run(self) -> list[Finding]:
        self._collect()
        findings = self._flag_discipline()
        findings.extend(self._check_order())
        return findings

    # -- pass 1: which attributes are lock-guarded? --------------------------

    def _collect(self) -> None:
        for _module, owner, func in self.project.iter_functions():
            types = self._types(owner, func)
            walker = _LockWalker(self.project, types)
            for node, held in walker.walk(func.body, ()):
                if not held:
                    continue
                for obj, attr in _mutations(node):
                    ref = types.resolve(obj)
                    if not ref.scalar:
                        continue
                    obj_key = _key(obj)
                    for cls, lock_attr, held_key in held:
                        if cls == ref.scalar and held_key == obj_key:
                            self.guarded.setdefault(cls, {}).setdefault(
                                attr, lock_attr)
            if owner is not None:
                acquired = {
                    lock_attr
                    for node, _ in walker.walk(func.body, ())
                    if isinstance(node, ast.With)
                    for cls, lock_attr, key in walker.acquisitions(node)
                    if cls == owner.name and key == _key(
                        ast.Name(id="self", ctx=ast.Load()))
                }
                if acquired:
                    self.method_acquires[(owner.name, func.name)] = acquired

    # -- pass 2: accesses outside the guarding lock --------------------------

    def _flag_discipline(self) -> list[Finding]:
        findings = []
        rule = "lock.discipline"
        for module, owner, func in self.project.iter_functions():
            types = self._types(owner, func)
            walker = _LockWalker(self.project, types)
            in_own_init = owner is not None and func.name == "__init__"
            scope = _scope_name(owner, func)
            seen: set[tuple[str, str, str]] = set()
            for node, held in walker.walk(func.body, ()):
                if not isinstance(node, ast.Attribute):
                    continue
                ref = types.resolve(node.value)
                if not ref.scalar:
                    continue
                guard = self.guarded.get(ref.scalar, {}).get(node.attr)
                if guard is None:
                    continue
                is_self = (isinstance(node.value, ast.Name)
                           and node.value.id == "self")
                if in_own_init and is_self and owner.name == ref.scalar:
                    continue  # pre-publication
                if (isinstance(node.value, ast.Name)
                        and node.value.id in types.fresh):
                    continue  # function-local fresh object
                obj_key = _key(node.value)
                if any(cls == ref.scalar and lock == guard
                       and key == obj_key
                       for cls, lock, key in held):
                    continue
                if self.project.suppressed(module, node.lineno, rule, func):
                    continue
                kind = ("write" if isinstance(node.ctx, (ast.Store, ast.Del))
                        else "read")
                detail = f"{kind}:{ref.scalar}.{node.attr}"
                dedup = (scope, detail, "")
                if dedup in seen:
                    continue
                seen.add(dedup)
                findings.append(Finding(
                    rule=rule,
                    message=(
                        f"{kind} of {ref.scalar}.{node.attr} outside "
                        f"`with <{ref.scalar}>.{guard}:` — attribute is "
                        f"mutated under that lock elsewhere"
                    ),
                    relpath=module.relpath,
                    lineno=node.lineno,
                    scope=scope,
                    detail=detail,
                ))
        return findings

    # -- rule 2: lock-order graph -------------------------------------------

    def _check_order(self) -> list[Finding]:
        findings = []
        rule = "lock.order"
        #: (src, dst) -> (module, lineno, scope); nodes are "Class.lock"
        edges: dict[tuple[str, str], tuple[ModuleInfo, int, str]] = {}
        for module, owner, func in self.project.iter_functions():
            types = self._types(owner, func)
            walker = _LockWalker(self.project, types)
            scope = _scope_name(owner, func)
            for node, held in walker.walk(func.body, ()):
                if not held:
                    continue
                acquired: list[tuple[str, str]] = []
                if isinstance(node, ast.With):
                    acquired = [(c, a)
                                for c, a, _ in walker.acquisitions(node)]
                elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute):
                    ref = types.resolve(node.func.value)
                    if ref.scalar:
                        own = self.method_acquires.get(
                            (ref.scalar, node.func.attr), set())
                        acquired = [(ref.scalar, a) for a in own]
                for cls, lock_attr in acquired:
                    dst = f"{cls}.{lock_attr}"
                    for held_cls, held_attr, _ in held:
                        src = f"{held_cls}.{held_attr}"
                        if src == dst:
                            info = self.project.class_named(cls)
                            kind = (info.lock_attrs.get(lock_attr, "Lock")
                                    if info else "Lock")
                            if kind == "RLock":
                                continue
                            if self.project.suppressed(
                                    module, node.lineno, rule, func):
                                continue
                            findings.append(Finding(
                                rule=rule,
                                message=(
                                    f"re-acquires non-reentrant {dst} "
                                    f"while already holding it"
                                ),
                                relpath=module.relpath,
                                lineno=node.lineno,
                                scope=scope,
                                detail=f"reacquire:{dst}",
                            ))
                            continue
                        if self.project.suppressed(
                                module, node.lineno, rule, func):
                            continue
                        edges.setdefault(
                            (src, dst), (module, node.lineno, scope))
        findings.extend(self._find_cycles(edges))
        return findings

    def _find_cycles(
        self,
        edges: dict[tuple[str, str], tuple[ModuleInfo, int, str]],
    ) -> list[Finding]:
        graph: dict[str, list[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        findings = []
        reported: set[tuple[str, ...]] = set()
        state: dict[str, int] = {}  # 0 in progress, 1 done
        stack: list[str] = []

        def visit(node: str) -> None:
            state[node] = 0
            stack.append(node)
            for nxt in graph[node]:
                if nxt not in state:
                    visit(nxt)
                elif state[nxt] == 0:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    canon = _canonical_cycle(cycle[:-1])
                    if canon in reported:
                        continue
                    reported.add(canon)
                    path = "->".join(cycle)
                    module, lineno, scope = edges[(node, nxt)]
                    findings.append(Finding(
                        rule="lock.order",
                        message=(
                            f"lock-order cycle (potential deadlock): {path}"
                        ),
                        relpath=module.relpath,
                        lineno=lineno,
                        scope=scope,
                        detail=f"cycle:{'->'.join(canon)}",
                    ))
            stack.pop()
            state[node] = 1

        for node in sorted(graph):
            if node not in state:
                visit(node)
        return findings


def _canonical_cycle(nodes: list[str]) -> tuple[str, ...]:
    """Rotate so the lexicographically smallest node leads."""
    if not nodes:
        return ()
    pivot = nodes.index(min(nodes))
    return tuple(nodes[pivot:] + nodes[:pivot])


def _scope_name(owner: Optional[ClassInfo], func: ast.FunctionDef) -> str:
    return f"{owner.name}.{func.name}" if owner else func.name


def check_locks(project: Project) -> list[Finding]:
    return LockAnalysis(project).run()
