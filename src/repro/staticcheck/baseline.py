"""Baseline file I/O.

The baseline is a committed JSON file mapping finding fingerprints to a
one-line justification.  A finding whose fingerprint appears in the
baseline is *accepted debt* — reported, but it does not fail the run.
Anything not in the baseline is new and fails; a baseline entry no
fresh finding matches is *stale* and is reported so it can be deleted
(the meta-test in ``tests/test_staticcheck.py`` keeps the file exact).

Fingerprints exclude line numbers (see
:mod:`repro.staticcheck.findings`), so the baseline survives unrelated
edits to the same files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from .findings import Finding

_VERSION = 1


class Baseline:
    """The committed set of accepted findings."""

    def __init__(self, entries: Optional[dict[str, str]] = None,
                 path: Optional[Path] = None):
        self.entries: dict[str, str] = dict(entries or {})
        self.path = path

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        data = json.loads(path.read_text())
        entries = data.get("findings", {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: 'findings' must be an object")
        return cls(entries={str(k): str(v) for k, v in entries.items()},
                   path=path)

    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[tuple[Finding, str]], list[str]]:
        """Partition into (new, baselined-with-reason, stale-entries)."""
        new: list[Finding] = []
        accepted: list[tuple[Finding, str]] = []
        matched: set[str] = set()
        for finding in findings:
            reason = self.entries.get(finding.fingerprint)
            if reason is None:
                new.append(finding)
            else:
                matched.add(finding.fingerprint)
                accepted.append((finding, reason))
        stale = sorted(set(self.entries) - matched)
        return new, accepted, stale

    def write(self, path: Path, findings: Iterable[Finding],
              default_reason: str = "accepted pre-existing finding") -> None:
        """Write a baseline accepting *findings*, preserving reasons
        already recorded for fingerprints that are still firing."""
        entries = {
            f.fingerprint: self.entries.get(f.fingerprint, default_reason)
            for f in findings
        }
        payload = {
            "version": _VERSION,
            "findings": dict(sorted(entries.items())),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")
