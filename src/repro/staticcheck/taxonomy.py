"""Error-taxonomy rules.

**error.taxonomy** — every ``raise`` of a project-defined exception must
raise a :class:`~repro.errors.ReproError` subclass: the degradation
ladder, the chaos suite, and the HTTP status mapping all dispatch on
that hierarchy, so an untyped exception is a hole in the resilience
contract.  Internal control-flow exceptions (e.g. ``NotVectorizable``)
opt out with ``# staticcheck: allow-raise`` on the class definition;
stdlib raises from an allowlist (``ValueError`` for bad arguments, …)
are fine.  Dynamic raises (``raise spec.error(msg)``) are skipped.

**error.swallow** — a broad handler (``except Exception``, ``except
BaseException``, bare ``except``) must not silently swallow
:class:`~repro.errors.VerificationError` (or ``KeyboardInterrupt`` for
the BaseException forms): the body must re-raise, or an earlier
``except`` clause in the same ``try`` must name the exception
explicitly — converting it deliberately is fine, losing it is not.
"""

from __future__ import annotations

import ast

from .findings import Finding
from .model import Project

#: stdlib exceptions a library may legitimately raise directly
STDLIB_ALLOWED = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError", "AttributeError",
    "NotImplementedError", "RuntimeError", "StopIteration", "SystemExit",
    "AssertionError", "OSError", "ImportError", "KeyboardInterrupt",
    "TimeoutError",
})

_BROAD = {"Exception", "BaseException"}


def _raised_name(node: ast.Raise, project: Project):
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    called = isinstance(exc, ast.Call)
    if called:
        exc = exc.func
    if not isinstance(exc, ast.Name):
        return None  # dynamic / attribute raise — out of scope
    if not called and exc.id not in project.classes \
            and exc.id not in STDLIB_ALLOWED:
        return None  # ``raise saved_exc`` — re-raise of a stored variable
    return exc.id


def _check_raises(project: Project) -> list[Finding]:
    findings = []
    rule = "error.taxonomy"
    for module, owner, func in project.iter_functions():
        scope = f"{owner.name}.{func.name}" if owner else func.name
        for node in ast.walk(func):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node, project)
            if name is None:
                continue
            info = project.class_named(name)
            if info is not None:
                if info.allow_raise:
                    continue
                if project.is_subclass_of(name, "ReproError"):
                    continue
            elif name in STDLIB_ALLOWED:
                continue
            if project.suppressed(module, node.lineno, rule, func):
                continue
            origin = "project exception" if info else "exception"
            findings.append(Finding(
                rule=rule,
                message=(
                    f"raises {name} — {origin} outside the ReproError "
                    f"hierarchy escapes the typed-error contract "
                    f"(mark the class '# staticcheck: allow-raise' if it "
                    f"is internal control flow)"
                ),
                relpath=module.relpath,
                lineno=node.lineno,
                scope=scope,
                detail=f"raise:{name}",
            ))
    return findings


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    type_ = handler.type
    if type_ is None:
        return set()
    elts = type_.elts if isinstance(type_, ast.Tuple) else [type_]
    names = set()
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.add(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.add(elt.attr)
    return names


def _has_bare_raise(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _check_swallows(project: Project) -> list[Finding]:
    findings = []
    rule = "error.swallow"
    for module, owner, func in project.iter_functions():
        scope = f"{owner.name}.{func.name}" if owner else func.name
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            earlier: set[str] = set()
            for handler in node.handlers:
                names = _handler_names(handler)
                is_bare = handler.type is None
                broad = is_bare or (names & _BROAD)
                if not broad:
                    earlier |= names
                    continue
                catches_base = is_bare or "BaseException" in names
                required = {"VerificationError"}
                if catches_base:
                    required.add("KeyboardInterrupt")
                if _has_bare_raise(handler) or required <= earlier:
                    earlier |= names
                    continue
                if project.suppressed(module, handler.lineno, rule, func):
                    earlier |= names
                    continue
                label = "bare except" if is_bare else (
                    f"except {'/'.join(sorted(names & _BROAD))}")
                missing = ", ".join(sorted(required - earlier))
                findings.append(Finding(
                    rule=rule,
                    message=(
                        f"{label} swallows {missing} — re-raise in the "
                        f"handler or catch those types explicitly first"
                    ),
                    relpath=module.relpath,
                    lineno=handler.lineno,
                    scope=scope,
                    detail=f"swallow:{'bare' if is_bare else '-'.join(sorted(names & _BROAD))}",
                ))
                earlier |= names
    return findings


def check_taxonomy(project: Project) -> list[Finding]:
    return _check_raises(project) + _check_swallows(project)
