"""Interactive SQL shell for the repro engine.

Run with ``python -m repro`` (optionally passing a SQL script to execute
first).  Statements end with ``;``.  Besides SQL (CREATE TABLE / CREATE
INDEX / SELECT), the shell understands meta commands:

.help                 show this help
.schema [table]       list tables / describe one table
.analyze [table]      collect optimizer statistics
.explain on|off       print plan + transformed SQL with each query
.decisions on|off     print CBQT decisions with each query
.mode cbqt|heuristic  switch optimizer mode (§4.1's experiment switch)
.strategy NAME|auto   force a state-space search strategy (§3.2)
.disable NAME         disable a transformation (e.g. jppd, unnest_view)
.enable NAME          re-enable a transformation
.timing on|off        print optimization/execution timings
.cache [stats|clear|on|off]  plan-cache statistics / control
.checks on|off        paranoid mode: verify tree/plan invariants at
                      every transformation step (debug_checks)
.quarantine [stats|reset [NAME]]  show or reset the transformation
                      quarantine (repeatedly failing transformations
                      are auto-disabled until reset)
.metrics [json]       unified metrics snapshot (optimizer, executor,
                      plan cache, quarantine, dynamic sampling)
.trace on|off|show|clear  10053-style optimizer trace: arm, print the
                      buffered events, or clear the buffer
.timeout SECONDS|off  statement timeout for subsequent queries
.load FILE            run statements from a SQL script
.staticcheck [--verbose|--family NAMES]  run the project static
                      analyzer (lock discipline, lock order,
                      cancellation/fault coverage, error taxonomy,
                      metrics/trace hygiene) against the baseline
.quit                 exit

``EXPLAIN SELECT ...;`` and ``EXPLAIN ANALYZE SELECT ...;`` work as SQL
verbs: the former prints the plan without running it, the latter runs
the query with operator profiling and prints estimated vs. actual rows,
per-operator Q-error, invocations, and self-time.

Queries run through the shared plan cache (:class:`repro.QueryService`);
``.explain on`` output shows each statement's cache disposition.  The
module also provides subcommands: ``python -m repro cache-stats
[script ...]`` runs the scripts and prints the plan-cache counters,
``python -m repro explain "SQL" [script ...]`` explains one query
(including cache counters) after running the scripts, ``python -m
repro explain-analyze "SQL" [script ...]`` runs it with operator
profiling and prints estimated-vs-actual output, ``python -m repro
trace "SQL" [script ...]`` prints the optimizer trace of one
optimization, ``python -m repro metrics [--json] [script ...]`` runs
the scripts and prints the unified metrics snapshot, ``python -m
repro check "SQL" [script ...]`` runs the optimizer sanitizer over the
query, printing every invariant violation attributed to the
transformation + CBQT state that produced it (exit status 1 if any
errors are found), ``python -m repro quarantine [stats|reset
[NAME]] [script ...]`` inspects or resets the transformation
quarantine after running the scripts, ``python -m repro serve
[script ...] [--host H] [--port P] [--workers N] [--data-dir DIR]``
runs the scripts and then serves the database over the HTTP/JSON
protocol (:mod:`repro.server`) until interrupted (with ``--data-dir``
the database is durable — write-ahead logged, recovered on start, and
checkpointed on graceful SIGTERM/SIGINT shutdown), ``python -m repro
checkpoint --data-dir DIR [script ...]`` recovers a data directory,
runs the scripts, and writes a checkpoint, ``python -m repro recover
--data-dir DIR [--verify]`` recovers a data directory and prints the
recovery report (``--verify`` replays it read-only into two replicas
and exits 1 on divergence or corruption), ``python -m repro
staticcheck [--json] [--verbose]`` runs the project-aware static
analyzer (:mod:`repro.staticcheck`) and exits 1 on any finding not in
the committed baseline, and ``python -m repro plan-digest [--update]``
optimizes the paper-query corpus and compares each chosen plan's
structural digest against the committed golden file (the plan-stability
CI gate; ``--update`` rewrites it).
"""

from __future__ import annotations

import sys
from dataclasses import replace
from typing import Optional, TextIO

from . import Database, OptimizerConfig, QueryService
from .cbqt.framework import CbqtConfig
from .errors import ReproError
from .obs import Tracer, annotation_lines

PROMPT = "repro> "
CONTINUATION = "   ...> "


class Shell:
    """One interactive session.  Separated from I/O for testability:
    ``run_line`` consumes input, output goes through ``echo``."""

    def __init__(self, out: Optional[TextIO] = None):
        self.db = Database()
        self.service = QueryService(self.db)
        self.out = out or sys.stdout
        self.show_explain = False
        self.show_decisions = False
        self.show_timing = False
        self.timeout: Optional[float] = None
        self._buffer: list[str] = []
        self.done = False

    # -- plumbing ----------------------------------------------------------

    def echo(self, text: str = "") -> None:
        print(text, file=self.out)

    @property
    def needs_more(self) -> bool:
        return bool(self._buffer)

    # -- input handling ------------------------------------------------------

    def run_line(self, line: str) -> None:
        """Feed one input line; executes when a statement completes."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            self._run_meta(stripped)
            return
        if not stripped and not self._buffer:
            return
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer).strip().rstrip(";")
            self._buffer.clear()
            if statement:
                self._run_statement(statement)

    def run_script(self, text: str) -> None:
        for line in text.splitlines():
            self.run_line(line)
        if self._buffer:  # permit a missing trailing semicolon
            statement = "\n".join(self._buffer).strip().rstrip(";")
            self._buffer.clear()
            if statement and not statement.startswith("."):
                self._run_statement(statement)

    # -- statements ------------------------------------------------------------

    def _run_statement(self, statement: str) -> None:
        try:
            head = statement.lstrip().split(None, 1)[0].upper()
            if head == "CREATE":
                self.db.execute_ddl(statement)
                self.echo("ok")
            elif head == "EXPLAIN":
                self._run_explain(statement)
            elif head == "SELECT" or statement.lstrip().startswith("("):
                self._execute_statement(statement)
            elif head == "INSERT":
                self.echo("error: use .load with generated data or the "
                          "Python API to insert rows")
            else:
                self.echo(f"error: unsupported statement {head!r}")
        except ReproError as exc:
            self.echo(f"error: {exc}")

    def _run_explain(self, statement: str) -> None:
        """The EXPLAIN / EXPLAIN ANALYZE SQL verbs."""
        rest = statement.lstrip()[len("EXPLAIN"):].lstrip()
        if rest.upper().startswith("ANALYZE"):
            sql = rest[len("ANALYZE"):].lstrip()
            result = self.service.execute(
                sql, timeout=self.timeout, analyze=True
            )
            self.echo(result.explain_analyze())
        else:
            self.echo(self.service.explain(rest))

    def _execute_statement(self, sql: str) -> None:
        result = self.service.execute(sql, timeout=self.timeout)
        if self.show_explain:
            for line in annotation_lines(result.report, result.cache_status):
                self.echo(line)
            self.echo(result.plan.describe())
        if self.show_decisions:
            for decision in result.report.decisions:
                self.echo(
                    f"-- {decision.transformation}: strategy="
                    f"{decision.strategy} states={decision.states_evaluated} "
                    f"applied={decision.applied_labels or '-'}"
                )
        self._print_rows(result.columns, result.rows)
        if self.show_timing:
            self.echo(
                f"-- optimize {result.optimize_seconds * 1000:.1f} ms, "
                f"execute {result.execute_seconds * 1000:.1f} ms, "
                f"{result.work_units:,.0f} work units, "
                f"{result.report.total_states} states"
            )

    def _print_rows(self, columns: list[str], rows: list[tuple],
                    limit: int = 50) -> None:
        widths = [
            max(len(str(c)), *(len(_fmt(r[i])) for r in rows[:limit]))
            if rows else len(str(c))
            for i, c in enumerate(columns)
        ]
        header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
        self.echo(header)
        self.echo("-+-".join("-" * w for w in widths))
        for row in rows[:limit]:
            self.echo(" | ".join(
                _fmt(v).ljust(w) for v, w in zip(row, widths)
            ))
        suffix = f" (showing {limit})" if len(rows) > limit else ""
        self.echo(f"({len(rows)} rows{suffix})")

    # -- meta commands ------------------------------------------------------------

    def _run_meta(self, command: str) -> None:
        parts = command.split()
        name, args = parts[0], parts[1:]
        handler = getattr(self, f"_meta_{name[1:]}", None)
        if handler is None:
            self.echo(f"unknown command {name}; try .help")
            return
        try:
            handler(args)
        except ReproError as exc:
            self.echo(f"error: {exc}")

    def _meta_help(self, _args) -> None:
        self.echo(__doc__.split("meta commands:", 1)[-1].strip())

    def _meta_quit(self, _args) -> None:
        self.done = True

    def _meta_schema(self, args) -> None:
        if args:
            table = self.db.catalog.table(args[0])
            for column in table.columns.values():
                flags = " NOT NULL" if column.not_null else ""
                self.echo(f"  {column.name} {column.data_type.name}{flags}")
            if table.primary_key:
                self.echo(f"  PRIMARY KEY ({', '.join(table.primary_key)})")
            for index in table.indexes:
                unique = "UNIQUE " if index.unique else ""
                self.echo(
                    f"  {unique}INDEX {index.name} ({', '.join(index.columns)})"
                )
            return
        for name in sorted(self.db.catalog.tables):
            rows = (
                self.db.storage.get(name).row_count
                if self.db.storage.has(name) else 0
            )
            self.echo(f"  {name} ({rows} rows)")

    def _meta_analyze(self, args) -> None:
        self.db.analyze(args[0] if args else None)
        self.echo("statistics collected")

    def _meta_explain(self, args) -> None:
        self.show_explain = _on_off(args)
        self.echo(f"explain {'on' if self.show_explain else 'off'}")

    def _meta_decisions(self, args) -> None:
        self.show_decisions = _on_off(args)
        self.echo(f"decisions {'on' if self.show_decisions else 'off'}")

    def _meta_timing(self, args) -> None:
        self.show_timing = _on_off(args)
        self.echo(f"timing {'on' if self.show_timing else 'off'}")

    def _meta_cache(self, args) -> None:
        action = args[0].lower() if args else "stats"
        if action == "stats":
            self.echo(self.service.format_cache_stats())
        elif action == "clear":
            removed = self.service.invalidate()
            self.echo(f"plan cache cleared ({removed} entries)")
        elif action in ("on", "off"):
            self.service.caching = action == "on"
            self.echo(f"plan cache {action}")
        else:
            self.echo("usage: .cache [stats|clear|on|off]")

    def _meta_mode(self, args) -> None:
        mode = args[0].lower() if args else ""
        if mode == "heuristic":
            disabled = self.db.config.cbqt.disabled_transformations
            self.db.config = OptimizerConfig(
                cbqt=CbqtConfig(
                    enabled=False, disabled_transformations=disabled
                )
            )
        elif mode == "cbqt":
            disabled = self.db.config.cbqt.disabled_transformations
            self.db.config = OptimizerConfig(
                cbqt=CbqtConfig(disabled_transformations=disabled)
            )
        else:
            self.echo("usage: .mode cbqt|heuristic")
            return
        self.echo(f"optimizer mode: {mode}")

    def _meta_strategy(self, args) -> None:
        strategy = args[0].lower() if args else "auto"
        if strategy == "auto":
            self.db.config = self.db.config.with_strategy(None)
        elif strategy in ("exhaustive", "linear", "iterative", "two_pass"):
            self.db.config = self.db.config.with_strategy(strategy)
        else:
            self.echo(
                "usage: .strategy exhaustive|linear|iterative|two_pass|auto"
            )
            return
        self.echo(f"search strategy: {strategy}")

    def _meta_disable(self, args) -> None:
        if not args:
            self.echo("usage: .disable TRANSFORMATION")
            return
        self.db.config = self.db.config.without(args[0])
        disabled = sorted(self.db.config.cbqt.disabled_transformations)
        self.echo(f"disabled: {', '.join(disabled)}")

    def _meta_enable(self, args) -> None:
        if not args:
            self.echo("usage: .enable TRANSFORMATION")
            return
        remaining = self.db.config.cbqt.disabled_transformations - {args[0]}
        self.db.config = replace(
            self.db.config,
            cbqt=replace(
                self.db.config.cbqt,
                disabled_transformations=frozenset(remaining),
            ),
        )
        self.echo(f"disabled: {', '.join(sorted(remaining)) or '(none)'}")

    def _meta_checks(self, args) -> None:
        enabled = _on_off(args)
        self.db.config = replace(
            self.db.config,
            cbqt=replace(self.db.config.cbqt, debug_checks=enabled),
        )
        self.service.invalidate()  # cached plans were not audited
        self.echo(f"debug checks {'on' if enabled else 'off'}")

    def _meta_staticcheck(self, args) -> None:
        from .staticcheck import main as staticcheck_main
        staticcheck_main(args, echo=self.echo)

    def _meta_quarantine(self, args) -> None:
        action = args[0].lower() if args else "stats"
        if action == "stats":
            self.echo(self.db.quarantine.format_table())
        elif action == "reset":
            name = args[1] if len(args) > 1 else None
            self.db.quarantine.reset(name)
            target = name or "all transformations"
            self.echo(f"quarantine reset: {target}")
        else:
            self.echo("usage: .quarantine [stats|reset [NAME]]")

    def _meta_metrics(self, args) -> None:
        if self.db.metrics is None:
            self.echo("metrics detached")
            return
        if args and args[0].lower() == "json":
            self.echo(self.db.metrics.to_json(indent=2))
        else:
            self.echo(self.db.metrics.format_table())

    def _meta_trace(self, args) -> None:
        action = args[0].lower() if args else "show"
        if action == "on":
            if self.db.tracer is None:
                self.db.tracer = Tracer()
            self.echo("trace on")
        elif action == "off":
            self.db.tracer = None
            self.echo("trace off")
        elif action == "show":
            if self.db.tracer is None:
                self.echo("trace off (arm with .trace on)")
            else:
                self.echo(self.db.tracer.format_table())
        elif action == "clear":
            if self.db.tracer is not None:
                self.db.tracer.clear()
            self.echo("trace cleared")
        else:
            self.echo("usage: .trace on|off|show|clear")

    def _meta_timeout(self, args) -> None:
        if not args:
            current = self.timeout
            self.echo(
                f"timeout {current:.3f}s" if current is not None
                else "timeout off"
            )
            return
        if args[0].lower() in ("off", "none", "0"):
            self.timeout = None
            self.echo("timeout off")
            return
        try:
            seconds = float(args[0])
        except ValueError:
            self.echo("usage: .timeout SECONDS|off")
            return
        if seconds <= 0:
            self.echo("usage: .timeout SECONDS|off")
            return
        self.timeout = seconds
        self.echo(f"timeout {seconds:.3f}s")

    def _meta_load(self, args) -> None:
        if not args:
            self.echo("usage: .load FILE")
            return
        try:
            with open(args[0]) as handle:
                self.run_script(handle.read())
        except OSError as exc:
            self.echo(f"error: {exc}")


def _fmt(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _on_off(args) -> bool:
    return bool(args) and args[0].lower() in ("on", "1", "true", "yes")


def _cmd_cache_stats(args: list[str], shell: Shell) -> int:
    """``repro cache-stats [script ...]`` — run the scripts, then print
    the plan-cache counters."""
    for path in args:
        with open(path) as handle:
            shell.run_script(handle.read())
    shell.echo(shell.service.format_cache_stats())
    return 0


def _cmd_explain(args: list[str], shell: Shell) -> int:
    """``repro explain "SQL" [script ...]`` — run the scripts (schema /
    data setup), then explain the query with cache counters."""
    if not args:
        shell.echo('usage: explain "SQL" [script ...]')
        return 2
    sql, scripts = args[0], args[1:]
    for path in scripts:
        with open(path) as handle:
            shell.run_script(handle.read())
    try:
        shell.echo(shell.service.explain(sql))
    except ReproError as exc:
        shell.echo(f"error: {exc}")
        return 1
    return 0


def _cmd_check(args: list[str], shell: Shell) -> int:
    """``repro check "SQL" [script ...]`` — run the scripts (schema /
    data setup), then audit the query through the sanitizer and print
    the diagnostic report.  Exit 1 when errors were found."""
    if not args:
        shell.echo('usage: check "SQL" [script ...]')
        return 2
    sql, scripts = args[0], args[1:]
    for path in scripts:
        with open(path) as handle:
            shell.run_script(handle.read())
    try:
        report = shell.db.check(sql)
    except ReproError as exc:
        shell.echo(f"error: {exc}")
        return 1
    shell.echo(report.format())
    return 0 if report.ok else 1


def _cmd_quarantine(args: list[str], shell: Shell) -> int:
    """``repro quarantine [stats|reset [NAME]] [script ...]`` — run the
    scripts, then inspect or reset the transformation quarantine."""
    action = args[0].lower() if args else "stats"
    if action not in ("stats", "reset"):
        shell.echo("usage: quarantine [stats|reset [NAME]] [script ...]")
        return 2
    rest = args[1:]
    name = None
    if action == "reset" and rest and not rest[0].endswith(".sql"):
        name, rest = rest[0], rest[1:]
    for path in rest:
        with open(path) as handle:
            shell.run_script(handle.read())
    if action == "reset":
        shell.db.quarantine.reset(name)
        shell.echo(f"quarantine reset: {name or 'all transformations'}")
        return 0
    shell.echo(shell.db.quarantine.format_table())
    return 0


def _cmd_explain_analyze(args: list[str], shell: Shell) -> int:
    """``repro explain-analyze "SQL" [script ...]`` — run the scripts
    (schema / data setup), then execute the query with operator
    profiling and print estimated vs. actual rows with Q-error."""
    if not args:
        shell.echo('usage: explain-analyze "SQL" [script ...]')
        return 2
    sql, scripts = args[0], args[1:]
    for path in scripts:
        with open(path) as handle:
            shell.run_script(handle.read())
    try:
        result = shell.service.execute(sql, analyze=True)
    except ReproError as exc:
        shell.echo(f"error: {exc}")
        return 1
    shell.echo(result.explain_analyze())
    return 0


def _cmd_trace(args: list[str], shell: Shell) -> int:
    """``repro trace "SQL" [script ...]`` — run the scripts, then
    optimize the query with the 10053-style trace armed and print every
    search event."""
    if not args:
        shell.echo('usage: trace "SQL" [script ...]')
        return 2
    sql, scripts = args[0], args[1:]
    for path in scripts:
        with open(path) as handle:
            shell.run_script(handle.read())
    try:
        with shell.db.tracing() as tracer:
            shell.db.optimize(sql)
    except ReproError as exc:
        shell.echo(f"error: {exc}")
        return 1
    shell.echo(tracer.format_table())
    return 0


def _cmd_metrics(args: list[str], shell: Shell) -> int:
    """``repro metrics [--json] [script ...]`` — run the scripts, then
    print the unified metrics snapshot."""
    as_json = False
    if args and args[0] == "--json":
        as_json = True
        args = args[1:]
    for path in args:
        with open(path) as handle:
            shell.run_script(handle.read())
    metrics = shell.db.metrics
    if metrics is None:
        shell.echo("metrics detached")
        return 1
    shell.echo(metrics.to_json(indent=2) if as_json else metrics.format_table())
    return 0


def _open_durable(shell: Shell, data_dir: str, fsync: str) -> int:
    """Swap the shell's in-memory database for a durable one rooted at
    *data_dir* (recovering whatever the directory already holds)."""
    from .durability import DurabilityConfig

    try:
        shell.db = Database(
            data_dir=data_dir, durability=DurabilityConfig(fsync=fsync)
        )
    except ReproError as exc:
        shell.echo(f"error: {exc}")
        return 1
    shell.service = QueryService(shell.db)
    report = shell.db.recovery
    if report is not None and (
        report.checkpoint_tables or report.wal_records_total
    ):
        shell.echo(
            f"recovered {data_dir}: checkpoint lsn {report.checkpoint_lsn} "
            f"({report.checkpoint_tables} tables, "
            f"{report.checkpoint_rows} rows), "
            f"{report.wal_records_applied} WAL records replayed"
            + (f", {report.torn_bytes_dropped} torn bytes dropped"
               if report.torn_bytes_dropped else "")
        )
    return 0


def _cmd_serve(args: list[str], shell: Shell) -> int:
    """``repro serve [script ...] [--host H] [--port P] [--workers N]
    [--timeout S] [--idle-timeout S] [--data-dir DIR] [--fsync P]
    [--grace S] [--verbose]`` — run the scripts (schema / data setup),
    then serve the database over HTTP/JSON until interrupted.  All
    sessions share the shell's plan cache.  With ``--data-dir`` the
    database is durable: it recovers the directory on start, write-ahead
    logs every commit, and SIGTERM/SIGINT drain in-flight statements
    (``--grace`` seconds), checkpoint, and close the WAL before exit."""
    from .server import ReproServer, ServerConfig
    from .server.http import RequestHandler, make_http_server, run_server

    config = ServerConfig()
    scripts: list[str] = []
    data_dir: Optional[str] = None
    fsync = "batch"
    flags = {
        "--host": ("host", str),
        "--port": ("port", int),
        "--workers": ("workers", int),
        "--timeout": ("statement_timeout", float),
        "--idle-timeout": ("idle_timeout", float),
        "--grace": ("shutdown_grace", float),
    }
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--verbose":
            RequestHandler.verbose = True
            i += 1
        elif arg in ("--data-dir", "--fsync"):
            if i + 1 >= len(args):
                shell.echo(f"usage: serve ... {arg} VALUE")
                return 2
            if arg == "--data-dir":
                data_dir = args[i + 1]
            else:
                fsync = args[i + 1]
            i += 2
        elif arg in flags:
            if i + 1 >= len(args):
                shell.echo(f"usage: serve ... {arg} VALUE")
                return 2
            field, cast = flags[arg]
            try:
                setattr(config, field, cast(args[i + 1]))
            except ValueError:
                shell.echo(f"error: {arg} expects a {cast.__name__}")
                return 2
            i += 2
        elif arg.startswith("--"):
            shell.echo(f"error: unknown flag {arg}")
            return 2
        else:
            scripts.append(arg)
            i += 1
    if data_dir is not None:
        status = _open_durable(shell, data_dir, fsync)
        if status:
            return status
    for path in scripts:
        with open(path) as handle:
            shell.run_script(handle.read())
    app = ReproServer(service=shell.service, config=config)
    server = make_http_server(app)
    host, port = server.server_address[:2]
    durable = f", durable at {data_dir} (fsync={fsync})" if data_dir else ""
    shell.echo(f"serving on http://{host}:{port} "
               f"({config.workers} workers{durable}); Ctrl-C to stop")
    outcome = run_server(server)
    if outcome.get("cancelled"):
        shell.echo(f"shutdown: cancelled {outcome['cancelled']} statements")
    if outcome.get("checkpointed"):
        shell.echo("shutdown: checkpoint written, WAL closed")
    return 0


def _parse_data_dir(args: list[str], shell: Shell, usage: str,
                    ) -> tuple[Optional[str], str, list[str], bool, int]:
    """Shared ``--data-dir DIR [--fsync P] [--verify] [script ...]``
    parsing for the durability verbs."""
    data_dir: Optional[str] = None
    fsync = "batch"
    verify = False
    scripts: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("--data-dir", "--fsync"):
            if i + 1 >= len(args):
                shell.echo(usage)
                return None, fsync, scripts, verify, 2
            if arg == "--data-dir":
                data_dir = args[i + 1]
            else:
                fsync = args[i + 1]
            i += 2
        elif arg == "--verify":
            verify = True
            i += 1
        elif arg.startswith("--"):
            shell.echo(f"error: unknown flag {arg}")
            return None, fsync, scripts, verify, 2
        else:
            scripts.append(arg)
            i += 1
    if data_dir is None:
        shell.echo(usage)
        return None, fsync, scripts, verify, 2
    return data_dir, fsync, scripts, verify, 0


def _cmd_checkpoint(args: list[str], shell: Shell) -> int:
    """``repro checkpoint --data-dir DIR [--fsync P] [script ...]`` —
    recover the directory, run the scripts (if any), write a checkpoint
    of the full state, truncate the WAL, and close."""
    usage = "usage: checkpoint --data-dir DIR [--fsync P] [script ...]"
    data_dir, fsync, scripts, _, status = _parse_data_dir(args, shell, usage)
    if status or data_dir is None:
        return status
    status = _open_durable(shell, data_dir, fsync)
    if status:
        return status
    for path in scripts:
        with open(path) as handle:
            shell.run_script(handle.read())
    try:
        lsn = shell.db.checkpoint()
    finally:
        shell.db.close()
    shell.echo(f"checkpoint written at lsn {lsn} ({data_dir})")
    return 0


def _cmd_recover(args: list[str], shell: Shell) -> int:
    """``repro recover --data-dir DIR [--verify]`` — recover the
    directory and print the recovery report.  Without ``--verify`` a
    torn WAL tail is repaired on disk (what a normal open does); with
    ``--verify`` the files are left untouched and recovery is replayed
    twice into independent replicas, requiring identical state digests
    and index invariants — exit 1 when recovery fails or diverges."""
    import os

    from .durability import (
        CHECKPOINT_FILENAME,
        WAL_FILENAME,
        verify_recovery,
    )
    from .errors import DurabilityError

    usage = "usage: recover --data-dir DIR [--verify]"
    data_dir, fsync, _, verify, status = _parse_data_dir(args, shell, usage)
    if status or data_dir is None:
        return status
    if verify:
        try:
            report = verify_recovery(
                data_dir,
                os.path.join(data_dir, WAL_FILENAME),
                os.path.join(data_dir, CHECKPOINT_FILENAME),
            )
        except DurabilityError as exc:
            shell.echo(f"verification FAILED: {exc}")
            return 1
        shell.echo(f"verification ok: {data_dir}")
    else:
        status = _open_durable(shell, data_dir, fsync)
        if status:
            return status
        report = shell.db.recovery
        shell.db.close()
    if report is not None:
        for key, value in sorted(report.to_dict().items()):
            shell.echo(f"  {key}: {value}")
    return 0


def _cmd_staticcheck(args: list[str], shell: Shell) -> int:
    """``repro staticcheck [--json] [--verbose] [--family NAMES]`` —
    run the project-aware static analyzer over ``src/repro`` and exit 1
    on any finding not covered by the committed baseline."""
    from .staticcheck import main as staticcheck_main
    return staticcheck_main(args, echo=shell.echo)


def _load_corpus(path: str) -> dict:
    """Load the paper-query corpus (the ``ALL_RUNNABLE`` dict) from a
    module file — kept in tests/ as the single source of truth."""
    import importlib.util

    spec = importlib.util.spec_from_file_location("plan_digest_corpus", path)
    if spec is None or spec.loader is None:
        raise OSError(f"cannot load corpus module {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return dict(module.ALL_RUNNABLE)


def _cmd_plan_digest(args: list[str], shell: Shell) -> int:
    """``repro plan-digest [--update] [--corpus FILE] [--golden FILE]``
    — optimize the paper-query corpus against the seeded HR database and
    compare each chosen plan's structural digest (join order, access
    paths, predicate placement — no costs) with the committed golden
    file.  Any difference exits 1: the plan-stability CI gate.  With
    ``--update`` the golden file is rewritten instead."""
    import json

    from .workload import hr_database
    from .workload.plan_digest import corpus_digests

    corpus_path = "tests/paper_queries.py"
    golden_path = "tests/golden/plan_digests.json"
    update = False
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--update":
            update = True
            i += 1
        elif arg in ("--corpus", "--golden"):
            if i + 1 >= len(args):
                shell.echo(f"usage: plan-digest ... {arg} FILE")
                return 2
            if arg == "--corpus":
                corpus_path = args[i + 1]
            else:
                golden_path = args[i + 1]
            i += 2
        else:
            shell.echo(f"error: unknown argument {arg}")
            return 2
    try:
        queries = _load_corpus(corpus_path)
    except OSError as exc:
        shell.echo(f"error: {exc}")
        return 1
    db = hr_database(scale=1, seed=42)
    digests = corpus_digests(db, queries)
    memo = db.snapshot().get("plan_memo", {})
    shell.echo(
        f"digested {len(digests)} plans "
        f"(memo {'on' if db.config.plan_memo else 'off'}, "
        f"hit rate {memo.get('hit_rate', 0.0):.0%})"
    )
    if update:
        with open(golden_path, "w") as handle:
            json.dump(digests, handle, indent=2, sort_keys=True)
            handle.write("\n")
        shell.echo(f"golden file updated: {golden_path}")
        return 0
    try:
        with open(golden_path) as handle:
            golden = json.load(handle)
    except OSError as exc:
        shell.echo(f"error: cannot read golden file: {exc}")
        shell.echo("run 'python -m repro plan-digest --update' to create it")
        return 1
    changed = sorted(
        name for name in set(golden) | set(digests)
        if golden.get(name) != digests.get(name)
    )
    if not changed:
        shell.echo(f"plan stability ok: {len(digests)} plans match {golden_path}")
        return 0
    for name in changed:
        shell.echo(f"PLAN CHANGED: {name}")
        before = (golden.get(name) or "<absent>").splitlines()
        after = (digests.get(name) or "<absent>").splitlines()
        import difflib

        for line in difflib.unified_diff(
            before, after, fromfile="golden", tofile="current", lineterm=""
        ):
            shell.echo(f"  {line}")
    shell.echo(
        f"plan stability FAILED: {len(changed)} of {len(digests)} plans "
        f"differ from {golden_path}"
    )
    return 1


SUBCOMMANDS = {
    "cache-stats": _cmd_cache_stats,
    "check": _cmd_check,
    "checkpoint": _cmd_checkpoint,
    "explain": _cmd_explain,
    "explain-analyze": _cmd_explain_analyze,
    "metrics": _cmd_metrics,
    "plan-digest": _cmd_plan_digest,
    "quarantine": _cmd_quarantine,
    "recover": _cmd_recover,
    "serve": _cmd_serve,
    "staticcheck": _cmd_staticcheck,
    "trace": _cmd_trace,
}


def main(argv: Optional[list[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    shell = Shell()
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:], shell)
    for path in argv:
        with open(path) as handle:
            shell.run_script(handle.read())
    if not sys.stdin.isatty():
        shell.run_script(sys.stdin.read())
        return 0
    shell.echo("repro shell — cost-based query transformation engine")
    shell.echo("type .help for commands, SQL statements end with ';'")
    while not shell.done:
        try:
            prompt = CONTINUATION if shell.needs_more else PROMPT
            line = input(prompt)
        except EOFError:
            break
        except KeyboardInterrupt:
            shell.echo("")
            continue
        shell.run_line(line)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
