from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cost-based query transformation framework "
        "(reproduction of Ahmed et al., VLDB 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
