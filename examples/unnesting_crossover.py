"""The paper's central cost-based decision (§2.2.1): unnest a correlated
aggregate subquery into a group-by view — or keep tuple-iteration
semantics?

This example reproduces the trade-off with the paper's Q1 shape and
sweeps the *outer filter selectivity*: when the outer query keeps only a
handful of employees and the correlation column is indexed, TIS evaluates
the subquery a few times via the index and wins; as the outer filter
widens, computing the aggregate once for every department and joining
wins.  The cost-based framework flips its decision at the crossover —
exactly why the paper says "the decision to unnest such subqueries must
be cost-based".

Run:  python examples/unnesting_crossover.py
"""

import random

from repro import Database, OptimizerConfig


def build_db() -> Database:
    db = Database()
    db.execute_ddl("""
        CREATE TABLE employees (
            emp_id INT PRIMARY KEY,
            salary INT,
            dept_id INT,
            hired INT)
    """)
    db.execute_ddl("CREATE INDEX emp_dept ON employees (dept_id)")
    rng = random.Random(7)
    db.insert("employees", [
        {
            "emp_id": i,
            "salary": rng.randint(1_000, 20_000),
            "dept_id": rng.randint(1, 40),
            "hired": rng.randint(1, 1_000),
        }
        for i in range(1, 4_001)
    ])
    db.analyze()
    return db


QUERY = """
    SELECT e.emp_id, e.salary
    FROM employees e
    WHERE e.hired <= {bound}
      AND e.salary > (SELECT AVG(e2.salary) FROM employees e2
                      WHERE e2.dept_id = e.dept_id)
"""


def main() -> None:
    db = build_db()
    forced_tis = OptimizerConfig().without("unnest_view", "subquery_merge")

    print(f"{'outer rows':>11} {'decision':>10} {'CBQT work':>12} "
          f"{'TIS work':>12} {'unnest work':>12}")
    for bound in (5, 25, 100, 400, 1000):
        optimized = db.optimize(QUERY.format(bound=bound))
        decision = optimized.report.decision_for("unnest_view")
        unnested = bool(decision and decision.changed_query)

        cbqt = db.execute(QUERY.format(bound=bound))
        tis = db.execute(QUERY.format(bound=bound), forced_tis)
        assert sorted(cbqt.rows) == sorted(tis.rows)

        # approximate "always unnest" by measuring CBQT when it unnests,
        # otherwise re-using the cost the search recorded
        label = "UNNEST" if unnested else "keep TIS"
        print(f"{bound * 4:>11} {label:>10} {cbqt.work_units:>12,.0f} "
              f"{tis.work_units:>12,.0f} "
              f"{'=' if unnested else '-':>12}")

    print(
        "\nWith a narrow outer filter the optimizer keeps the correlated\n"
        "subquery (index-driven TIS, like the pre-10g heuristic); as the\n"
        "outer row count grows it switches to the group-by-view unnesting\n"
        "(the paper's Q10/Q11)."
    )


if __name__ == "__main__":
    main()
