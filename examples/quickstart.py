"""Quickstart: create a schema, load data, and watch the cost-based
transformation framework pick a plan.

Run:  python examples/quickstart.py
"""

from repro import Database, OptimizerConfig


def main() -> None:
    db = Database()

    # -- schema ------------------------------------------------------------
    db.execute_ddl("""
        CREATE TABLE departments (
            dept_id INT PRIMARY KEY,
            department_name VARCHAR(30) NOT NULL,
            loc_id INT)
    """)
    db.execute_ddl("""
        CREATE TABLE employees (
            emp_id INT PRIMARY KEY,
            employee_name VARCHAR(30) NOT NULL,
            salary INT,
            dept_id INT REFERENCES departments(dept_id))
    """)
    db.execute_ddl("CREATE INDEX emp_dept_ix ON employees (dept_id)")

    # -- data --------------------------------------------------------------
    db.insert("departments", [
        {"dept_id": d, "department_name": f"dept_{d}", "loc_id": d % 5}
        for d in range(1, 21)
    ])
    import random

    rng = random.Random(1)
    db.insert("employees", [
        {
            "emp_id": i,
            "employee_name": f"emp_{i}",
            "salary": rng.randint(1_000, 20_000),
            "dept_id": rng.randint(1, 20),
        }
        for i in range(1, 2_001)
    ])
    db.analyze()   # collect optimizer statistics

    # -- the paper's running example: an above-average-salary query ----------
    sql = """
        SELECT e.employee_name, e.salary
        FROM employees e
        WHERE e.dept_id IN (SELECT d.dept_id FROM departments d
                            WHERE d.loc_id = 3)
          AND e.salary > (SELECT AVG(e2.salary) FROM employees e2
                          WHERE e2.dept_id = e.dept_id)
    """

    print("=== EXPLAIN (cost-based transformation ON) ===")
    print(db.explain(sql))

    optimized = db.optimize(sql)
    print("\n=== transformation decisions ===")
    for decision in optimized.report.decisions:
        print(
            f"  {decision.transformation:<18} strategy={decision.strategy:<11}"
            f" states={decision.states_evaluated:<3}"
            f" applied={decision.applied_labels or '-'}"
        )

    result = db.execute(sql)
    print(f"\n{len(result.rows)} rows; execution work units: "
          f"{result.work_units:,.0f}")

    heuristic = db.execute(sql, OptimizerConfig.heuristic_mode())
    print(f"heuristic-mode work units:           {heuristic.work_units:,.0f}")
    print(f"rows identical: {sorted(result.rows) == sorted(heuristic.rows)}")


if __name__ == "__main__":
    main()
