"""A gallery of every transformation in the suite: for each one, a query
it applies to, the transformed SQL, and the optimizer's verdict.

Run:  python examples/transformation_gallery.py
"""

import random

from repro import Database


def build_db() -> Database:
    db = Database()
    db.execute_ddl("""
        CREATE TABLE regions (region_id INT PRIMARY KEY, name VARCHAR(20))
    """)
    db.execute_ddl("""
        CREATE TABLE stores (
            store_id INT PRIMARY KEY,
            region_id INT REFERENCES regions(region_id),
            size INT)
    """)
    db.execute_ddl("""
        CREATE TABLE sales (
            sale_id INT PRIMARY KEY,
            store_id INT REFERENCES stores(store_id),
            amount INT,
            day INT)
    """)
    db.execute_ddl("""
        CREATE TABLE returns (
            return_id INT PRIMARY KEY,
            store_id INT,
            amount INT)
    """)
    db.execute_ddl("CREATE INDEX sales_store ON sales (store_id)")
    db.execute_ddl("CREATE INDEX stores_region ON stores (region_id)")
    rng = random.Random(3)
    db.insert("regions", [
        {"region_id": i, "name": f"r{i}"} for i in range(1, 7)
    ])
    db.insert("stores", [
        {"store_id": i, "region_id": rng.randint(1, 6),
         "size": rng.randint(1, 100)}
        for i in range(1, 81)
    ])
    db.insert("sales", [
        {"sale_id": i, "store_id": rng.randint(1, 80),
         "amount": rng.randint(1, 500), "day": rng.randint(1, 365)}
        for i in range(1, 4001)
    ])
    db.insert("returns", [
        {"return_id": i, "store_id": rng.randint(1, 90),
         "amount": rng.randint(1, 300)}
        for i in range(1, 301)
    ])
    db.analyze()
    db.register_function(
        "FRAUD_SCORE", lambda x: None if x is None else (x * 37) % 5,
        expensive_cost=400.0,
    )
    return db


GALLERY = [
    ("subquery unnesting (merge -> semijoin, imperative §2.1.1)",
     "SELECT s.store_id FROM stores s WHERE EXISTS "
     "(SELECT 1 FROM sales x WHERE x.store_id = s.store_id "
     "AND x.amount > 400)"),
    ("null-aware antijoin (NOT IN over nullable column)",
     "SELECT s.store_id FROM stores s WHERE s.store_id NOT IN "
     "(SELECT r.store_id FROM returns r WHERE r.amount > 200)"),
    ("aggregate subquery unnesting (cost-based, Q1/Q10)",
     "SELECT x.sale_id FROM sales x WHERE x.amount > "
     "(SELECT AVG(y.amount) FROM sales y WHERE y.store_id = x.store_id)"),
    ("group-by view merging (Q10 -> Q11)",
     "SELECT s.store_id, v.total FROM stores s, "
     "(SELECT x.store_id AS sid, SUM(x.amount) AS total FROM sales x "
     "GROUP BY x.store_id) v WHERE v.sid = s.store_id AND s.size > 90"),
    ("join predicate pushdown (Q12 -> Q13)",
     "SELECT s.store_id FROM stores s, "
     "(SELECT DISTINCT x.store_id AS sid FROM sales x WHERE x.amount > 450) v "
     "WHERE v.sid = s.store_id AND s.size > 95"),
    ("group-by placement / eager aggregation (§2.2.4)",
     "SELECT r.name, SUM(x.amount) FROM regions r, stores s, sales x "
     "WHERE x.store_id = s.store_id AND s.region_id = r.region_id "
     "GROUP BY r.name"),
    ("join factorization (Q14 -> Q15)",
     "SELECT s.store_id, x.amount FROM stores s, sales x "
     "WHERE x.store_id = s.store_id AND x.day < 30 "
     "UNION ALL "
     "SELECT s.store_id, x.amount FROM stores s, sales x "
     "WHERE x.store_id = s.store_id AND x.day > 330"),
    ("MINUS into antijoin (§2.2.7)",
     "SELECT x.store_id FROM sales x MINUS "
     "SELECT r.store_id FROM returns r"),
    ("disjunction into UNION ALL (§2.2.8)",
     "SELECT s.store_id FROM stores s, sales x WHERE "
     "x.store_id = s.store_id AND (s.size > 98 OR x.amount > 495)"),
    ("expensive-predicate pullup under ROWNUM (Q16 -> Q17)",
     "SELECT v.sale_id FROM (SELECT x.sale_id, x.amount FROM sales x "
     "WHERE FRAUD_SCORE(x.amount) = 1 ORDER BY x.amount DESC) v "
     "WHERE rownum <= 10"),
    ("join elimination (Q4 -> Q6)",
     "SELECT x.sale_id, x.amount FROM sales x, stores s "
     "WHERE x.store_id = s.store_id"),
]


def main() -> None:
    db = build_db()
    for title, sql in GALLERY:
        optimized = db.optimize(sql)
        applied = [
            label
            for decision in optimized.report.decisions
            for label in decision.applied_labels
        ]
        print("=" * 72)
        print(title)
        print(f"  decisions applied: {applied or ['(none / heuristic only)']}")
        print(f"  transformed: {optimized.transformed_sql[:160]}")
        result = db.execute(sql)
        print(f"  -> {len(result.rows)} rows, "
              f"{result.work_units:,.0f} work units")


if __name__ == "__main__":
    main()
