"""A miniature of the paper's evaluation (§4): run a generated workload
under heuristic mode and full CBQT, and print the Figure-2-style top-N%
improvement curve over the affected queries.

Run:  python examples/workload_study.py          (about a minute)
"""

from repro import OptimizerConfig
from repro.workload import (
    MixWeights,
    QueryGenerator,
    apps_database,
    degradation_stats,
    optimization_time_increase_percent,
    register_workload_functions,
    run_workload,
    top_n_curve,
)


def main() -> None:
    print("building the synthetic applications schema ...")
    db, schema = apps_database(seed=7)
    register_workload_functions(db)
    print(f"  {len(schema.tables)} tables across modules "
          f"{', '.join(schema.modules)}")

    # enrich the complex classes so the affected subset is visible at
    # this scale (the paper reports over affected queries anyway)
    weights = MixWeights(
        spj=0.55, exists=0.08, not_exists=0.04, in_multi=0.06, not_in=0.03,
        agg_subquery=0.08, groupby_view=0.06, distinct_view=0.04, gbp=0.04,
        union_all=0.01, setop=0.005, or_pred=0.005,
    )
    queries = QueryGenerator(schema, seed=303, weights=weights).generate(80)
    print(f"running {len(queries)} queries under both optimizer modes ...")

    result = run_workload(
        db, queries, OptimizerConfig.heuristic_mode(), OptimizerConfig()
    )
    if result.errors:
        print("errors:", result.errors)
        return

    affected = result.affected()
    print(f"\nexecution plans changed for {len(affected)} of "
          f"{len(result.outcomes)} queries")

    curve = top_n_curve(affected)
    print(f"\n{'top N%':>8} {'queries':>8} {'improvement %':>14}")
    for point in curve:
        print(f"{point.fraction * 100:7.0f}% {point.n_queries:8d} "
              f"{point.improvement_percent:14.1f}")

    stats = degradation_stats(affected)
    print(f"\ndegraded: {stats.degraded_percent_of_queries:.0f}% of affected "
          f"queries, by {stats.average_degradation_percent:.0f}% on average")
    print(f"optimization effort increase: "
          f"{optimization_time_increase_percent(result.outcomes):.0f}%")
    print("\n(compare Figure 2 of the paper: +27% at top 5%, +20% overall, "
          "18% of affected degraded, optimization time +40%)")


if __name__ == "__main__":
    main()
