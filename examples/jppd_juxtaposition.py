"""Juxtaposition of view merging and join predicate pushdown (§3.3.2).

The paper's Q12 joins a DISTINCT view of departments-in-certain-countries
to employees.  Three plans compete:

* Q12 — keep the view, join it whole (hash/merge join);
* Q13 — push the join predicate inside (JPPD): the view becomes a
  lateral index probe per outer row, DISTINCT is dropped and the join
  becomes a semijoin;
* Q18 — merge the distinct view into the outer query (dedup pulled up).

Because applying one precludes the others, the framework costs all three
*juxtaposed* in one state space and keeps the winner.

Run:  python examples/jppd_juxtaposition.py
"""

import random

from repro import Database


def build_db() -> Database:
    db = Database()
    db.execute_ddl("""
        CREATE TABLE locations (
            loc_id INT PRIMARY KEY,
            country_id INT)
    """)
    db.execute_ddl("""
        CREATE TABLE departments (
            dept_id INT PRIMARY KEY,
            loc_id INT REFERENCES locations(loc_id))
    """)
    db.execute_ddl("""
        CREATE TABLE employees (
            emp_id INT PRIMARY KEY,
            dept_id INT REFERENCES departments(dept_id),
            salary INT,
            hired INT)
    """)
    db.execute_ddl("CREATE INDEX dept_loc ON departments (loc_id)")
    rng = random.Random(11)
    db.insert("locations", [
        {"loc_id": i, "country_id": i % 6} for i in range(1, 31)
    ])
    db.insert("departments", [
        {"dept_id": i, "loc_id": rng.randint(1, 30)} for i in range(1, 101)
    ])
    db.insert("employees", [
        {
            "emp_id": i,
            "dept_id": rng.randint(1, 100),
            "salary": rng.randint(1000, 9000),
            "hired": rng.randint(1, 100),
        }
        for i in range(1, 3001)
    ])
    db.analyze()
    return db


SQL = """
    SELECT e.emp_id, e.salary
    FROM employees e,
         (SELECT DISTINCT d.dept_id
          FROM departments d, locations l
          WHERE d.loc_id = l.loc_id AND l.country_id IN (1, 2)) v
    WHERE e.dept_id = v.dept_id AND e.hired <= 5
"""


def main() -> None:
    db = build_db()
    optimized = db.optimize(SQL)

    decision = optimized.report.decision_for("groupby_merge")
    print("juxtaposed decision (view merging x JPPD):")
    print(f"  objects: {decision.n_objects}  states costed: "
          f"{decision.states_evaluated}  (Q12 vs Q18 vs Q13)")
    print(f"  winner: {decision.applied_labels or ['keep the view (Q12)']}")
    print(f"  baseline cost: {decision.baseline_cost:,.0f}  "
          f"best cost: {decision.best_cost:,.0f}")

    print("\ntransformed SQL:")
    print(" ", optimized.transformed_sql[:200], "...")
    print("\nplan:")
    print(optimized.plan.describe())

    result = db.execute(SQL)
    print(f"\n{len(result.rows)} rows, {result.work_units:,.0f} work units")


if __name__ == "__main__":
    main()
