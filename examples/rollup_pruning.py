"""Group pruning (§2.1.4): the paper's Q9 story.

A view computes a ROLLUP over (country, state, city); the outer query
filters on ``city``.  The groups that roll ``city`` up — (country, state),
(country), and the grand total — can never satisfy the filter, so the
optimizer prunes them before the aggregation runs, then pushes the filter
inside and merges what remains.

Run:  python examples/rollup_pruning.py
"""

import random

from repro import Database


def build_db() -> Database:
    db = Database()
    db.execute_ddl(
        "CREATE TABLE sales (country_id INT, state_id INT, city_id INT, "
        "amount INT)"
    )
    rng = random.Random(9)
    db.insert("sales", [
        {
            "country_id": rng.randint(1, 4),
            "state_id": rng.randint(1, 12),
            "city_id": rng.randint(1, 40),
            "amount": rng.randint(1, 1000),
        }
        for _ in range(5_000)
    ])
    db.analyze()
    return db


SQL = """
    SELECT v.country_id, v.state_id, v.city_id, v.total
    FROM (SELECT s.country_id, s.state_id, s.city_id,
                 SUM(s.amount) AS total
          FROM sales s
          GROUP BY ROLLUP (s.country_id, s.state_id, s.city_id)) v
    WHERE v.city_id = 17
"""


def main() -> None:
    db = build_db()

    tree = db.parse(SQL)
    view = tree.from_items[0].subquery
    print(f"before: the view computes {len(view.grouping_sets)} grouping "
          f"sets (ROLLUP over 3 columns)")

    optimized = db.optimize(SQL)
    print("\nafter the heuristic phase (pruning + pushdown + merge):")
    print(" ", optimized.transformed_sql)

    result = db.execute(SQL)
    print(f"\n{len(result.rows)} rows, {result.work_units:,.0f} work units")

    # contrast: the same query with the pruning predicate on GROUPING()
    indicator_sql = """
        SELECT v.country_id, v.total
        FROM (SELECT s.country_id, s.state_id, SUM(s.amount) AS total,
                     GROUPING(s.state_id) AS gs
              FROM sales s
              GROUP BY ROLLUP (s.country_id, s.state_id)) v
        WHERE v.gs = 1 AND v.country_id IS NOT NULL
    """
    optimized2 = db.optimize(indicator_sql)
    print("\nGROUPING(state_id) = 1 keeps only the per-country subtotals:")
    print(" ", optimized2.transformed_sql[:180])
    rows = db.execute(indicator_sql).rows
    print(f"  -> {len(rows)} subtotal rows (one per country)")


if __name__ == "__main__":
    main()
